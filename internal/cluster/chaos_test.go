package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
)

// chaosOpts are the fast-converging fault-tolerance settings the chaos
// suite runs under: sub-second detection and drain so each scenario
// resolves in a few seconds, MaxAttempts high enough that recovery —
// not the retry budget — decides the outcome.
func chaosOpts(plan *comm.FaultPlan) Options {
	return Options{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		AttemptTimeout:    time.Second,
		DrainGrace:        300 * time.Millisecond,
		RetryBackoff:      5 * time.Millisecond,
		MaxAttempts:       3,
		Faults:            plan,
	}
}

func chaosCluster(t testing.TB, workers int, opts Options) *Cluster {
	t.Helper()
	cl, err := NewWithOptions(testRegistry(t), workers, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func chaosJob(azimuth float64) Job {
	return Job{
		Backend: string(core.Raster), Sim: "lulesh", Arch: "serial",
		N: 8, Width: 40, Height: 40, Shards: 3, Azimuth: azimuth, Zoom: 1,
	}
}

// renderOK renders one frame with a generous deadline and fails the test
// on error — the "never wedges" half of every chaos assertion is that
// this returns at all.
func renderOK(t *testing.T, cl *Cluster, job Job) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cl.Render(ctx, job)
	if err != nil {
		t.Fatalf("render: %v (evictions: %v)", err, cl.EvictReasons())
	}
	return res
}

// wantStandalone asserts a recovered cluster frame is byte-identical to
// the standalone reference: recovery must change where shards run, never
// what they produce.
func wantStandalone(t *testing.T, job Job, img *framebuffer.Image) {
	t.Helper()
	want, err := RenderStandalone(job)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != want.Image.W || img.H != want.Image.H {
		t.Fatalf("recovered frame is %dx%d, standalone %dx%d", img.W, img.H, want.Image.W, want.Image.H)
	}
	for i := range img.Color {
		if img.Color[i] != want.Image.Color[i] {
			t.Fatalf("recovered frame diverges from standalone at color word %d: %v vs %v", i, img.Color[i], want.Image.Color[i])
		}
	}
}

// waitEvicted polls until the rank is evicted or the deadline passes.
func waitEvicted(t *testing.T, cl *Cluster, rank int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cl.isDead(rank) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rank %d not evicted within deadline (reasons: %v)", rank, cl.EvictReasons())
}

// TestChaosKillMidFrameRecovers kills a frame member after its first few
// sends — mid-collective — and requires the frame to complete via
// eviction plus retry, byte-identical to the standalone reference, with
// the fleet still serving afterwards.
func TestChaosKillMidFrameRecovers(t *testing.T) {
	job := chaosJob(30)
	members, err := placeShards(4, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	victim := members[1]
	plan := comm.NewFaultPlan(7)
	// A few sends in: past the snapshot ack, inside the frame's global
	// bounds reduction. Survivors block on the dead rank; the heartbeat
	// monitor must evict it and cancel the attempt well before the
	// attempt deadline.
	plan.KillRankAfterSends(victim, 4)
	cl := chaosCluster(t, 4, chaosOpts(plan))

	res := renderOK(t, cl, job)
	wantStandalone(t, job, res.Image)

	st := cl.Stats()
	if st.Retries < 1 {
		t.Errorf("recovery took %d retries, want >= 1", st.Retries)
	}
	if !cl.isDead(victim) {
		t.Errorf("killed rank %d not evicted (dead: %v, reasons: %v)", victim, st.DeadRanks, cl.EvictReasons())
	}
	if st.AliveWorkers != 3 {
		t.Errorf("alive workers %d, want 3", st.AliveWorkers)
	}

	// The degraded fleet keeps serving: new frames place over survivors
	// with no further retries needed.
	before := st.Retries
	next := chaosJob(75)
	res2 := renderOK(t, cl, next)
	wantStandalone(t, next, res2.Image)
	if after := cl.Stats().Retries; after != before {
		t.Errorf("post-recovery frame needed %d retries", after-before)
	}
}

// TestChaosLinkStallEvictsAndRecovers stalls one worker->worker link so
// a rank keeps beaconing while its group traffic silently vanishes — the
// failure mode heartbeats cannot see. The mutual stuck-peer blame from
// the drained attempt must evict one endpoint of the stalled link, after
// which the retry re-places around it.
func TestChaosLinkStallEvictsAndRecovers(t *testing.T) {
	job := chaosJob(120)
	members, err := placeShards(4, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	plan := comm.NewFaultPlan(11)
	// Every group message from member 1 to the group leader vanishes,
	// starting with the first: the leader wedges in the bounds reduction
	// while all three ranks stay live.
	plan.StallAfter(members[1], members[0], 1)
	cl := chaosCluster(t, 4, chaosOpts(plan))

	res := renderOK(t, cl, job)
	wantStandalone(t, job, res.Image)

	st := cl.Stats()
	if st.Retries < 1 {
		t.Errorf("recovery took %d retries, want >= 1", st.Retries)
	}
	if st.Evictions < 1 {
		t.Fatalf("stalled link evicted nobody (stats %+v)", st)
	}
	// Fault localization on a stalled link is inherently ambiguous — the
	// blocked leader blames the staller, the staller's peers blame the
	// blocked leader — but whatever is evicted must be a stalled-link
	// endpoint, for the stated blame reason.
	for rank, reason := range cl.EvictReasons() {
		if rank != members[0] && rank != members[1] {
			t.Errorf("evicted rank %d is not an endpoint of the stalled link %d->%d", rank, members[1], members[0])
		}
		if !strings.Contains(reason, "blamed") {
			t.Errorf("rank %d evicted for %q, want a blame eviction", rank, reason)
		}
	}

	res2 := renderOK(t, cl, chaosJob(200))
	if res2.Image == nil {
		t.Fatal("post-recovery frame has no image")
	}
}

// TestChaosTransientDropHealsByRetry drops exactly one collective
// message. The attempt wedges and aborts, but with the blame threshold
// out of reach nobody is evicted: the retry reuses the same placement,
// discards the failed attempt's stale traffic by epoch, and succeeds.
func TestChaosTransientDropHealsByRetry(t *testing.T) {
	job := chaosJob(240)
	members, err := placeShards(4, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	plan := comm.NewFaultPlan(13)
	// Drop the first message member 1 sends the leader: its contribution
	// to the first bounds reduction.
	plan.DropNth(members[1], members[0], 1)
	opts := chaosOpts(plan)
	// One failed attempt charges at most two blame reports per rank;
	// keep the threshold above that so the transient stays transient.
	opts.BlameThreshold = 3
	cl := chaosCluster(t, 4, opts)

	res := renderOK(t, cl, job)
	wantStandalone(t, job, res.Image)

	st := cl.Stats()
	if st.Retries < 1 {
		t.Errorf("drop healed with %d retries, want >= 1", st.Retries)
	}
	if st.Evictions != 0 || len(st.DeadRanks) != 0 {
		t.Errorf("transient drop evicted ranks %v (reasons %v)", st.DeadRanks, cl.EvictReasons())
	}
	if st.StaleDrops < 1 {
		t.Errorf("retry consumed no stale messages (StaleDrops=%d); epoch filter untested", st.StaleDrops)
	}
}

// TestChaosSeededDropMatrix runs a deterministic random-drop storm on
// every worker->worker link and drives frames the way the serving layer
// does: each typed *RankFailure re-plans at a lower shard count. Every
// frame must eventually be served correctly — a single-shard frame uses
// no faulted link, so the ladder always has a floor — and no failure may
// be untyped or a hang.
func TestChaosSeededDropMatrix(t *testing.T) {
	plan := comm.NewFaultPlan(42)
	const workers = 4
	for from := 1; from <= workers; from++ {
		for to := 1; to <= workers; to++ {
			if from != to {
				plan.DropEvery(from, to, 0.05)
			}
		}
	}
	opts := chaosOpts(plan)
	opts.MaxAttempts = 2
	cl := chaosCluster(t, workers, opts)

	for i := 0; i < 4; i++ {
		job := chaosJob(float64(30 + 60*i))
		served := false
		for k := min(job.Shards, cl.AliveWorkers()); k >= 1; k-- {
			job.Shards = k
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := cl.Render(ctx, job)
			cancel()
			if err != nil {
				var rf *RankFailure
				if !errors.As(err, &rf) {
					t.Fatalf("frame %d at %d shards failed untyped: %v", i, k, err)
				}
				continue
			}
			wantStandalone(t, job, res.Image)
			served = true
			break
		}
		if !served {
			t.Fatalf("frame %d not served at any shard count (stats %+v, reasons %v)", i, cl.Stats(), cl.EvictReasons())
		}
	}
}

// TestChaosHeartbeatEviction kills an idle rank — no frame in flight —
// and requires the beacon monitor alone to evict it, stickily, with
// subsequent placement simply routing around the hole.
func TestChaosHeartbeatEviction(t *testing.T) {
	plan := comm.NewFaultPlan(3)
	cl := chaosCluster(t, 3, chaosOpts(plan))
	plan.KillRank(2)
	waitEvicted(t, cl, 2)

	if reason := cl.EvictReasons()[2]; !strings.Contains(reason, "heartbeat") {
		t.Errorf("rank 2 evicted for %q, want heartbeat timeout", reason)
	}
	if got := cl.AliveWorkers(); got != 2 {
		t.Errorf("alive workers %d, want 2", got)
	}

	// Placement already excludes the dead rank: the next frame needs no
	// retry at all.
	job := chaosJob(45)
	job.Shards = 2
	res := renderOK(t, cl, job)
	wantStandalone(t, job, res.Image)
	if st := cl.Stats(); st.Retries != 0 {
		t.Errorf("frame after idle eviction needed %d retries, want 0", st.Retries)
	}
}

// TestChaosRankFailureIsTyped shrinks the fleet below the requested
// shard count and requires the typed *RankFailure naming the dead ranks
// — the signal the serving layer re-plans on — while smaller requests
// keep working.
func TestChaosRankFailureIsTyped(t *testing.T) {
	plan := comm.NewFaultPlan(5)
	cl := chaosCluster(t, 2, chaosOpts(plan))
	plan.KillRank(1)
	waitEvicted(t, cl, 1)

	job := chaosJob(90)
	job.Shards = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := cl.Render(ctx, job)
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("infeasible shard count returned %v, want *RankFailure", err)
	}
	if len(rf.Ranks) != 1 || rf.Ranks[0] != 1 {
		t.Errorf("RankFailure names ranks %v, want [1]", rf.Ranks)
	}

	job.Shards = 1
	res := renderOK(t, cl, job)
	wantStandalone(t, job, res.Image)
}

// TestChaosRetryBudgetExhaustedIsTyped wedges a fleet with no spare
// capacity: eviction leaves fewer survivors than shards, so recovery is
// impossible and Render must fail typed — within the attempt budget, not
// by hanging.
func TestChaosRetryBudgetExhaustedIsTyped(t *testing.T) {
	job := chaosJob(150)
	members, err := placeShards(3, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	plan := comm.NewFaultPlan(17)
	plan.StallAfter(members[1], members[0], 1)
	cl := chaosCluster(t, 3, chaosOpts(plan))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, rerr := cl.Render(ctx, job)
	var rf *RankFailure
	if !errors.As(rerr, &rf) {
		t.Fatalf("unrecoverable fleet returned %v, want *RankFailure", rerr)
	}
	if rf.Attempts < 1 || rf.Attempts > cl.opts.MaxAttempts {
		t.Errorf("RankFailure after %d attempts, want within [1,%d]", rf.Attempts, cl.opts.MaxAttempts)
	}
	if len(rf.Ranks) == 0 {
		t.Error("RankFailure names no dead ranks")
	}
	if rf.Unwrap() == nil {
		t.Error("RankFailure carries no underlying attempt error")
	}
}
