package cluster

import (
	"encoding/json"
	"fmt"
	"math"
)

// The rank transport carries []float32 payloads. Control messages (jobs,
// results, snapshots) are byte blobs packed four bytes per word through
// the float bit pattern: safe because comm copies payloads verbatim and
// never does arithmetic on them, so NaN-patterned words survive intact.

// packBytes prepends the byte length and packs b little-endian, four
// bytes per float32 word.
func packBytes(b []byte) []float32 {
	out := make([]float32, 1+(len(b)+3)/4)
	out[0] = math.Float32frombits(uint32(len(b)))
	for i := 0; i < len(b); i += 4 {
		var w uint32
		for j := 0; j < 4 && i+j < len(b); j++ {
			w |= uint32(b[i+j]) << (8 * j)
		}
		out[1+i/4] = math.Float32frombits(w)
	}
	return out
}

// unpackBytes reverses packBytes, returning the blob and the number of
// words consumed so callers can carry trailing payloads (e.g. raw pixel
// data) in the same message.
func unpackBytes(data []float32) ([]byte, int, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("cluster: empty packed message")
	}
	n := int(math.Float32bits(data[0]))
	words := 1 + (n+3)/4
	if n < 0 || words > len(data) {
		return nil, 0, fmt.Errorf("cluster: packed length %d exceeds message (%d words)", n, len(data))
	}
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = byte(math.Float32bits(data[1+i/4]) >> (8 * (i % 4)))
	}
	return b, words, nil
}

// packJSON marshals v into a packed byte blob.
func packJSON(v any) ([]float32, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return packBytes(b), nil
}

// unpackJSON unmarshals a packed blob into v and returns any trailing
// words of the message.
func unpackJSON(data []float32, v any) ([]float32, error) {
	b, words, err := unpackBytes(data)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return nil, fmt.Errorf("cluster: decoding message: %w", err)
	}
	return data[words:], nil
}
