package cluster

import (
	"encoding/json"
	"fmt"

	"insitu/internal/core"
	"insitu/internal/framebuffer"
)

// Message tags on the router<->worker links. The composite exchange owns
// 1000..~5200 and the comm collectives own the negative range; cluster
// control traffic lives far above both.
const (
	tagJob         = 900001 // router -> worker: render one shard
	tagSnapshot    = 900002 // router -> worker: install a registry snapshot
	tagSnapshotAck = 900003 // worker -> router: snapshot installed
	tagResult      = 900004 // group leader -> router: finished frame
	tagHeartbeat   = 900005 // worker -> router: liveness beacon
	tagFrameDone   = 900006 // worker -> router: attempt finished or abandoned
	tagEvict       = 900007 // router -> worker: evicted; drop shard caches
)

// wireJob is the render order broadcast to every member of a sharded
// frame. Members lists the world ranks in shard order: member i renders
// shard i of the Shards-wide domain decomposition and becomes rank i of
// the job's sub-communicator.
type wireJob struct {
	JobID      uint64
	Backend    string
	Sim        string
	Arch       string
	N          int
	Width      int
	Height     int
	Shards     int
	RTWorkload int
	Azimuth    float64
	Zoom       float64
	Members    []int
	// DeadlineUnixNanos is the attempt's absolute abort deadline: every
	// member abandons the frame's collectives past it (0 = none). The
	// JobID doubles as the attempt's comm epoch.
	DeadlineUnixNanos int64 `json:",omitempty"`
}

// wireResult is the header of a finished frame (or the combined error of
// a failed one). The composited RGBA planes ride behind it in the same
// message as raw float words.
type wireResult struct {
	JobID uint64
	Err   string `json:",omitempty"`
	// Retryable marks failures caused by the transport (a dead or stalled
	// peer aborted the attempt), not by the frame itself: the router may
	// re-place and re-dispatch. Application errors are never retryable.
	Retryable            bool `json:",omitempty"`
	W, H                 int
	In                   core.Inputs
	BuildSeconds         float64
	RenderSeconds        float64 // slowest rank, the paper's max(T_local)
	CompositeSeconds     float64
	RankRenderSeconds    []float64
	RankCompositeSeconds []float64
}

// wireSnapshot replicates one registry snapshot. Gen is the router-side
// generation the push corresponds to (echoed in the ack); the snapshot
// travels as its canonical JSON encoding.
type wireSnapshot struct {
	Gen      uint64
	Snapshot json.RawMessage
}

// wireAck acknowledges a snapshot push.
type wireAck struct {
	Gen uint64
	Err string `json:",omitempty"`
}

// wireDone is a member's completion note for one attempt, sent whether
// the attempt succeeded, failed, or was abandoned. The router's drain
// barrier counts these before re-dispatching a failed frame (a member
// that has noted is provably out of the old exchange), and StuckOn — the
// world rank the member was blocked on when it aborted, -1 if none —
// feeds the blame counters that evict wedged-but-beaconing ranks.
type wireDone struct {
	JobID   uint64
	Rank    int
	StuckOn int
}

// encodeResult packs a result header and, when the frame succeeded, the
// image's color planes into one message.
func encodeResult(res *wireResult, img *framebuffer.Image) ([]float32, error) {
	head, err := packJSON(res)
	if err != nil {
		return nil, err
	}
	if img == nil {
		return head, nil
	}
	out := make([]float32, 0, len(head)+len(img.Color))
	out = append(out, head...)
	out = append(out, img.Color...)
	return out, nil
}

// decodeResult unpacks a result message, reconstructing the image (nil
// for failed frames).
func decodeResult(data []float32) (*wireResult, *framebuffer.Image, error) {
	var res wireResult
	rest, err := unpackJSON(data, &res)
	if err != nil {
		return nil, nil, err
	}
	if res.Err != "" {
		return &res, nil, nil
	}
	if want := 4 * res.W * res.H; len(rest) != want {
		return nil, nil, fmt.Errorf("cluster: result carries %d color words for %dx%d (want %d)", len(rest), res.W, res.H, want)
	}
	img := framebuffer.NewImage(res.W, res.H)
	copy(img.Color, rest)
	return &res, img, nil
}
