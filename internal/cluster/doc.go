// Package cluster partitions one admitted frame across a fleet of worker
// ranks — the serving-path analogue of the paper's distributed-memory
// setting, where every image is rendered by many tasks and finished by a
// sort-last composite whose cost Tc the fitted model predicts.
//
// Topology: a comm.World of size workers+1 holds rank 0 as the router
// (owned by the serving layer) and ranks 1..W as long-lived worker loops.
// Each worker serially drains its link from the router, handling registry
// snapshot pushes and render jobs in arrival order. A job names the
// worker ranks it spans (chosen by rendezvous placement over the shard's
// runner-cache identity, so a shard's prepared scene and device stay hot
// on one rank); those workers form a comm sub-communicator, render their
// shard of the weak-scaled domain decomposition, run the same global
// reductions the study path runs (bounds, scalar range, visibility
// order), composite sort-last via internal/composite, and the group
// leader ships the finished image back to the router.
//
// Deadlock freedom: the router serializes dispatch under one mutex, so
// jobs have a global total order; every worker processes its router link
// FIFO and serially, so when two jobs share workers, all shared workers
// execute them in the same order and inter-worker waits always point from
// later jobs to earlier ones — the wait graph is acyclic. Group
// collectives (bounds, field range, error barrier) run on every rank on
// every frame, even when local setup failed, so cache hit/miss asymmetry
// can never desynchronize an exchange.
//
// Registry replication: before dispatching a job, the router pushes the
// current model snapshot to every worker whose last-seen generation is
// stale, over the same links (FIFO guarantees the job renders under the
// models current at dispatch). Each worker installs the snapshot in its
// own registry replica, so hot reload and continuous calibration
// propagate cluster-wide without a shared registry.
package cluster
