// Package cluster partitions one admitted frame across a fleet of worker
// ranks — the serving-path analogue of the paper's distributed-memory
// setting, where every image is rendered by many tasks and finished by a
// sort-last composite whose cost Tc the fitted model predicts.
//
// Topology: a comm.World of size workers+1 holds rank 0 as the router
// (owned by the serving layer) and ranks 1..W as long-lived worker loops.
// Each worker serially drains its link from the router, handling registry
// snapshot pushes and render jobs in arrival order. A job names the
// worker ranks it spans (chosen by rendezvous placement over the shard's
// runner-cache identity, so a shard's prepared scene and device stay hot
// on one rank); those workers form a comm sub-communicator, render their
// shard of the weak-scaled domain decomposition, run the same global
// reductions the study path runs (bounds, scalar range, visibility
// order), composite sort-last via internal/composite, and the group
// leader ships the finished image back to the router.
//
// Deadlock freedom: the router serializes dispatch under one mutex, so
// jobs have a global total order; every worker processes its router link
// FIFO and serially, so when two jobs share workers, all shared workers
// execute them in the same order and inter-worker waits always point from
// later jobs to earlier ones — the wait graph is acyclic. Group
// collectives (bounds, field range, error barrier) run on every rank on
// every frame, even when local setup failed, so cache hit/miss asymmetry
// can never desynchronize an exchange.
//
// Registry replication: before dispatching a job, the router pushes the
// current model snapshot to every worker whose last-seen generation is
// stale, over the same links (FIFO guarantees the job renders under the
// models current at dispatch). Each worker installs the snapshot in its
// own registry replica, so hot reload and continuous calibration
// propagate cluster-wide without a shared registry.
//
// # Fault tolerance
//
// Failure detection runs on three independent signals. Each worker
// beacons liveness on its own goroutine (tagHeartbeat), so a rank busy
// rendering still proves it is alive; the router's monitor evicts ranks
// whose traffic stops for longer than Options.HeartbeatTimeout. Every
// render attempt carries an absolute deadline — a context the router
// shares with the attempt's workers — so a survivor blocked on a dead
// peer's collective aborts instead of wedging. And every member's
// completion note (tagFrameDone) reports the world rank it was blocked
// on when it aborted; these stuck-peer reports feed per-rank blame
// counters that evict wedged-but-beaconing ranks — the stalled-link
// failure mode heartbeats cannot see.
//
// Abandoning an exchange safely is the comm layer's WithEpoch contract:
// a job's group communicator is bound to the attempt's context and to
// the attempt id as its message epoch. Blocking operations — including
// everything the composite package does — abort by panicking with
// *comm.AbortError once the context expires (deadline reached, or a
// member evicted mid-attempt, which cancels the shared context so
// survivors abort immediately). The panic is recovered at the attempt
// boundary (renderJob), never crossing a frame. Messages a failed
// attempt left in flight are stamped with its epoch and silently
// discarded by the retry's receives, so stale payloads cannot alias
// retry traffic.
//
// Recovery: eviction is sticky — the rank leaves the placement ring
// (alive count, AliveWorkers), its in-flight attempts are cancelled, and
// it is told to drop its shard caches (tagEvict). Before re-dispatching
// a failed frame, the router runs a drain barrier: it waits for every
// live member's completion note, proof the member is out of the old
// exchange; members silent past the grace window are evicted as dead.
// The retry then re-places over survivors — rendezvous hashing moves
// only the shards whose rank died, every other shard keeps its warm
// caches — with exponential backoff charged against the caller's
// deadline. When survivors cannot host the requested shard count or the
// attempt budget is exhausted, Render returns a typed *RankFailure
// naming the dead ranks; the serving layer uses it to re-plan at a
// feasible shard count or fall back to standalone rendering. Recovery
// changes where shards run, never what they produce: a recovered frame
// is byte-identical to the standalone reference (chaos_test.go holds
// this across kill, stall, and drop faults).
package cluster
