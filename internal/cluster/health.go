package cluster

import (
	"context"
	"fmt"
	"time"

	"insitu/internal/comm"
)

// Options tunes the fleet's failure detection and recovery. The zero
// value of any field selects its default; the zero Options is what New
// uses.
type Options struct {
	// HeartbeatInterval is each worker's liveness beacon period.
	HeartbeatInterval time.Duration // default 100ms
	// HeartbeatTimeout is how long a rank may stay silent (no beacon, no
	// result, no note) before the monitor evicts it.
	HeartbeatTimeout time.Duration // default 1s
	// AttemptTimeout bounds one render attempt when the caller's context
	// carries no (or a later) deadline; every member abandons the
	// attempt's collectives past it.
	AttemptTimeout time.Duration // default 15s
	// DrainGrace is how long past an attempt's deadline the router waits
	// for survivors' completion notes before declaring silent members
	// dead.
	DrainGrace time.Duration // default 1s
	// RetryBackoff is the initial delay before re-dispatching a failed
	// frame, doubled per attempt and charged against the caller's
	// deadline.
	RetryBackoff time.Duration // default 25ms
	// MaxAttempts caps render attempts (first try included).
	MaxAttempts int // default 3
	// BlameThreshold is how many stuck-peer reports evict a rank that
	// still heartbeats — the wedged-link failure mode, invisible to the
	// beacon monitor.
	BlameThreshold int // default 2
	// Faults, when set, is installed on the fleet's transport before any
	// traffic flows — the chaos-test hook.
	Faults *comm.FaultPlan
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 100 * time.Millisecond
	}
	if out.HeartbeatTimeout <= 0 {
		out.HeartbeatTimeout = time.Second
	}
	if out.AttemptTimeout <= 0 {
		out.AttemptTimeout = 15 * time.Second
	}
	if out.DrainGrace <= 0 {
		out.DrainGrace = time.Second
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 25 * time.Millisecond
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 3
	}
	if out.BlameThreshold <= 0 {
		out.BlameThreshold = 2
	}
	return out
}

// RankFailure is the typed error Render returns when rank death or
// wedging — not an application error — exhausts the retry budget or
// leaves fewer live workers than the requested shard count. Ranks names
// the ranks evicted so far; callers (the serving layer) use it to
// re-plan at a feasible shard count or fall back to standalone
// rendering.
type RankFailure struct {
	Ranks    []int // evicted world ranks
	Attempts int   // attempts spent before giving up
	Last     error // the final attempt's failure
}

func (e *RankFailure) Error() string {
	return fmt.Sprintf("cluster: rank failure (dead ranks %v, %d attempts): %v", e.Ranks, e.Attempts, e.Last)
}

func (e *RankFailure) Unwrap() error { return e.Last }

// AliveWorkers returns how many workers are currently in the placement
// ring. Called on the serving admission hot path.
//
//insitu:noalloc
func (cl *Cluster) AliveWorkers() int { return int(cl.alive.Load()) }

// isDead reports whether a rank has been evicted.
func (cl *Cluster) isDead(w int) bool { return cl.dead[w].Load() }

// DeadRanks lists evicted world ranks in rank order (nil when healthy).
func (cl *Cluster) DeadRanks() []int {
	var out []int
	for w := 1; w <= cl.workers; w++ {
		if cl.dead[w].Load() {
			out = append(out, w)
		}
	}
	return out
}

// EvictReasons returns why each dead rank was evicted.
func (cl *Cluster) EvictReasons() map[int]string {
	cl.reasonMu.Lock()
	defer cl.reasonMu.Unlock()
	out := make(map[int]string, len(cl.evictReasons))
	for w, r := range cl.evictReasons {
		out[w] = r
	}
	return out
}

// evict removes a rank from the fleet: it leaves the placement ring, its
// in-flight attempts are cancelled so survivors abandon them immediately
// instead of waiting out the deadline, its beacon is retired, and — in
// case it is wedged rather than dead — it is told to invalidate its
// shard caches. Eviction is sticky: a rank that resumes beaconing is not
// re-admitted (the serving layer's breaker decides when a degraded fleet
// is worth probing again).
func (cl *Cluster) evict(w int, reason string) {
	if cl.dead[w].Swap(true) {
		return
	}
	cl.alive.Add(-1)
	cl.evictions.Add(1)
	cl.reasonMu.Lock()
	cl.evictReasons[w] = reason
	cl.reasonMu.Unlock()

	cl.attemptMu.Lock()
	for _, at := range cl.attempts {
		for _, m := range at.members {
			if m == w {
				at.cancel()
				break
			}
		}
	}
	cl.attemptMu.Unlock()

	// Off this goroutine: a wedged worker's inbound link may be full.
	cl.wg.Add(1)
	go func() {
		defer cl.wg.Done()
		cl.router.SendCtx(cl.ctx, w, tagEvict, nil)
	}()
}

// heartbeatLoop is worker w's liveness beacon. It runs on its own
// goroutine so a worker busy rendering still proves liveness; only a
// severed transport (or eviction) silences it.
func (cl *Cluster) heartbeatLoop(w int) {
	defer cl.wg.Done()
	e := cl.world.Endpoint(w)
	t := time.NewTicker(cl.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-cl.ctx.Done():
			return
		case <-t.C:
			if cl.dead[w].Load() {
				return
			}
			e.SendCtx(cl.ctx, 0, tagHeartbeat, nil)
		}
	}
}

// monitorLoop evicts ranks whose beacons (or any other traffic) stop for
// longer than the heartbeat timeout.
func (cl *Cluster) monitorLoop() {
	defer cl.wg.Done()
	t := time.NewTicker(cl.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-cl.ctx.Done():
			return
		case <-t.C:
			cutoff := time.Now().Add(-cl.opts.HeartbeatTimeout).UnixNano()
			for w := 1; w <= cl.workers; w++ {
				if !cl.dead[w].Load() && cl.lastBeat[w].Load() < cutoff {
					cl.evict(w, "heartbeat timeout")
				}
			}
		}
	}
}

// blameRank charges one stuck-peer report against a rank; at the blame
// threshold the rank is evicted even though it still beacons — the
// stalled-link failure mode, where the rank is alive but its traffic
// never arrives.
func (cl *Cluster) blameRank(r int) {
	if r < 1 || r > cl.workers {
		return
	}
	if int(cl.blame[r].Add(1)) >= cl.opts.BlameThreshold && !cl.dead[r].Load() {
		cl.evict(r, "blamed as stuck peer by exchange partners")
	}
}

// attemptContext returns the router-created context shared with one
// attempt's workers. A job whose attempt is already unregistered (its
// caller gave up) gets an already-cancelled context, so the worker
// abandons the frame at its first collective instead of rendering a
// frame nobody wants.
func (cl *Cluster) attemptContext(id uint64) context.Context {
	cl.attemptMu.Lock()
	at := cl.attempts[id]
	cl.attemptMu.Unlock()
	if at != nil {
		return at.ctx
	}
	return canceledCtx
}

var canceledCtx = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// drainAttempt is the barrier between a failed attempt and its retry: it
// waits until every live member has sent its completion note — proof the
// member is out of the old exchange, so the retry's traffic cannot be
// consumed by a rank still blocked in the old epoch. Members that stay
// silent past the grace window are evicted as dead; stuck-peer reports
// in the notes feed the blame counters.
func (cl *Cluster) drainAttempt(members []int, done <-chan wireDone, deadline time.Time) {
	noted := make(map[int]bool, len(members))
	wait := time.Until(deadline)
	if wait < 0 {
		wait = 0
	}
	grace := time.NewTimer(wait + cl.opts.DrainGrace)
	defer grace.Stop()
	// Re-check eviction state periodically: a member the monitor evicts
	// mid-drain stops being waited for.
	tick := time.NewTicker(cl.opts.HeartbeatInterval)
	defer tick.Stop()
	for {
		pending := 0
		for _, w := range members {
			if !noted[w] && !cl.isDead(w) {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		select {
		case n := <-done:
			noted[n.Rank] = true
			if n.StuckOn >= 1 {
				cl.blameRank(n.StuckOn)
			}
		case <-tick.C:
		case <-grace.C:
			for _, w := range members {
				if !noted[w] && !cl.isDead(w) {
					cl.evict(w, "no completion note after failed attempt")
				}
			}
			return
		case <-cl.ctx.Done():
			return
		}
	}
}
