package cluster

import (
	"fmt"
	"time"

	"insitu/internal/comm"
	"insitu/internal/composite"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/lru"
	"insitu/internal/render"
	"insitu/internal/scenario"
	"insitu/internal/vecmath"
)

// sceneKey identifies one cached shard slice: the simulation block a rank
// renders is a pure function of (proxy, size, decomposition, shard).
type sceneKey struct {
	sim              string
	n, shards, shard int
}

// runnerKey identifies one prepared frame runner. It extends sceneKey
// with everything preparation bakes in: architecture, backend, image
// size, and ray-tracing workload.
type runnerKey struct {
	arch, backend, sim            string
	n, w, h, rt, shards, shardIdx int
}

// shardState is one worker's long-lived render state: sliced scenes and
// prepared runners cached across jobs (the hot state rendezvous placement
// protects), plus a compositor whose per-rank scratch persists across
// exchanges. A shardState is confined to its worker's serial loop — no
// internal locking beyond the runner cache's own.
type shardState struct {
	scenes  *lru.Cache[sceneKey, *scenario.ShardData]
	runners *scenario.RunnerCache[runnerKey]
	comp    *composite.Compositor
}

func newShardState(sceneCap, runnerCap int) *shardState {
	return &shardState{
		scenes:  lru.New[sceneKey, *scenario.ShardData](sceneCap),
		runners: scenario.NewRunnerCache[runnerKey](runnerCap),
		comp:    composite.BinarySwap(),
	}
}

func (st *shardState) Close() { st.runners.Close() }

// hugeCoord is the neutral element a failed rank contributes to the
// bounds/range min-max reductions: finite (the comm reduction encoding
// cannot carry Inf) and dominated by any real coordinate.
const hugeCoord = 1e30

// render executes one shard of a job on the group communicator gc, whose
// rank i is the renderer of shard i (the job's Members order). It mirrors
// the study path measurement for measurement so served frames exercise
// exactly the configuration the models were fitted on: globally reduced
// bounds and scalar range, the shared orbit camera, per-rank local
// render, visibility-ordered sort-last composite, and max/avg reductions
// of the model inputs.
//
// Every collective here runs on every rank on every frame — ranks whose
// local setup failed contribute neutral values and the frame is discarded
// at the error barrier — so a cache miss or error on one rank can never
// desynchronize the group. Only the group leader (rank 0) returns a
// result; other ranks return (nil, nil).
func (st *shardState) render(gc *comm.Comm, job *wireJob) (*wireResult, *framebuffer.Image) {
	k := gc.Size()
	shard := gc.Rank()
	leader := shard == 0

	// Local, fallible setup. Errors are recorded, not returned: the rank
	// must keep participating in the frame's collectives.
	var (
		rerr    error
		backend scenario.Backend
		sd      *scenario.ShardData
	)
	backend, rerr = scenario.Lookup(core.Renderer(job.Backend))
	if rerr == nil {
		sk := sceneKey{job.Sim, job.N, job.Shards, shard}
		if v, ok := st.scenes.Get(sk); ok {
			sd = v
		} else if sd, rerr = scenario.BuildShard(job.Sim, job.N, job.Shards, shard, 1); rerr == nil {
			st.scenes.Add(sk, sd)
		}
	}

	// Globally consistent camera and color map, as in the study path.
	lb := vecmath.AABB{
		Min: vecmath.V(hugeCoord, hugeCoord, hugeCoord),
		Max: vecmath.V(-hugeCoord, -hugeCoord, -hugeCoord),
	}
	flo, fhi := hugeCoord, -hugeCoord
	if sd != nil {
		lb, flo, fhi = sd.LocalBounds, sd.FieldLo, sd.FieldHi
	}
	gb := lb
	if k > 1 {
		gb.Min.X = gc.AllReduceMin(lb.Min.X)
		gb.Min.Y = gc.AllReduceMin(lb.Min.Y)
		gb.Min.Z = gc.AllReduceMin(lb.Min.Z)
		gb.Max.X = gc.AllReduceMax(lb.Max.X)
		gb.Max.Y = gc.AllReduceMax(lb.Max.Y)
		gb.Max.Z = gc.AllReduceMax(lb.Max.Z)
		flo = gc.AllReduceMin(flo)
		fhi = gc.AllReduceMax(fhi)
	}
	cam := render.OrbitCamera(gb, job.Azimuth, 20, job.Zoom)

	// Lease this shard's prepared runner (preparing on first use) and
	// render the local partial image.
	var (
		lease     *scenario.RunnerLease[runnerKey]
		img       *framebuffer.Image
		renderSec float64
		buildSec  float64
		in        core.Inputs
	)
	// A bound communicator abandons the attempt by panicking mid-
	// collective when its deadline expires (see renderJob); the deferred
	// release keeps the runner lease from leaking on that path.
	released := false
	rel := func() {
		if lease != nil && !released {
			released = true
			lease.Release()
		}
	}
	defer rel()
	if rerr == nil {
		rk := runnerKey{job.Arch, job.Backend, job.Sim, job.N, job.Width, job.Height, job.RTWorkload, job.Shards, shard}
		lease, rerr = st.runners.Acquire(rk, func() (scenario.FrameRunner, func(), error) {
			dev, err := device.Profile(job.Arch)
			if err != nil {
				return nil, nil, err
			}
			sc := scenario.NewScene(dev, sd.Mesh, sd.Field, sd.Values, cam, job.Width, job.Height)
			sc.FieldLo, sc.FieldHi = flo, fhi
			sc.RTWorkload = job.RTWorkload
			r, err := backend.Prepare(sc)
			if err != nil {
				dev.Close()
				return nil, nil, err
			}
			return r, dev.Close, nil
		})
	}
	if rerr == nil {
		runner := lease.Runner()
		runner.SetCamera(cam)
		buildSec = runner.BuildSeconds()
		in = core.Inputs{Pixels: float64(job.Width * job.Height), Tasks: k}
		var elapsed time.Duration
		elapsed, img, rerr = runner.RenderFrame(&in)
		renderSec = elapsed.Seconds()
	}

	// Error barrier: the frame fails as a unit or proceeds as a unit.
	flag := 0.0
	if rerr != nil {
		flag = 1
	}
	if k > 1 {
		flag = gc.AllReduceMax(flag)
	}
	if flag > 0 {
		msg := ""
		if rerr != nil {
			msg = fmt.Sprintf("shard %d/%d: %v", shard, job.Shards, rerr)
		}
		if k > 1 {
			parts := gc.Gather(0, packBytes([]byte(msg)))
			if leader {
				msg = joinErrors(parts)
			}
		}
		rel()
		if !leader {
			return nil, nil
		}
		return &wireResult{JobID: job.JobID, Err: msg}, nil
	}

	// Visibility order for blend compositing, exactly as the study does.
	op := backend.CompositeOp()
	var order []int
	if op == composite.BlendOp && k > 1 {
		depth := sd.LocalBounds.Center().Sub(cam.Position).Length()
		parts := gc.Gather(0, []float32{float32(depth)})
		orderF := make([]float32, k)
		if leader {
			depths := make([]float64, k)
			for r, p := range parts {
				depths[r] = float64(p[0])
			}
			for i, r := range composite.VisibilityOrder(depths) {
				orderF[i] = float32(r)
			}
		}
		orderF = gc.Bcast(0, orderF)
		order = make([]int, len(orderF))
		for i, f := range orderF {
			order[i] = int(f)
		}
	}

	out := img
	compSec := 0.0
	var cerr error
	if k > 1 {
		var stats *composite.Stats
		out, stats, cerr = st.comp.Composite(gc, img, op, order)
		if stats != nil {
			compSec = stats.Elapsed.Seconds()
		}
	}
	cflag := 0.0
	if cerr != nil {
		cflag = 1
	}
	if k > 1 {
		cflag = gc.AllReduceMax(cflag)
	}
	if cflag > 0 {
		msg := ""
		if cerr != nil {
			msg = fmt.Sprintf("shard %d/%d composite: %v", shard, job.Shards, cerr)
		}
		if k > 1 {
			parts := gc.Gather(0, packBytes([]byte(msg)))
			if leader {
				msg = joinErrors(parts)
			}
		}
		rel()
		if !leader {
			return nil, nil
		}
		return &wireResult{JobID: job.JobID, Err: msg}, nil
	}

	// Reduce the measurements and model inputs the calibrator consumes:
	// max across ranks (a frame is as slow as its slowest task), average
	// active pixels for the compositing model's AvgAP term.
	rt, ct := renderSec, compSec
	if k > 1 {
		rt = gc.AllReduceMax(rt)
		ct = gc.AllReduceMax(ct)
		in.AvgAP = gc.AllReduceSum(in.AP) / float64(k)
		in.AP = gc.AllReduceMax(in.AP)
		in.O = gc.AllReduceMax(in.O)
		in.VO = gc.AllReduceMax(in.VO)
		in.PPT = gc.AllReduceMax(in.PPT)
		in.SPR = gc.AllReduceMax(in.SPR)
		in.CS = gc.AllReduceMax(in.CS)
		buildSec = gc.AllReduceMax(buildSec)
	} else {
		in.AvgAP = in.AP
	}
	perRank := gc.Gather(0, []float32{float32(renderSec)})
	// Per-rank composite spans ride back with the render spans so the
	// trace can blame a slow exchange on a specific rank. Unconditional:
	// every rank runs every collective on every frame.
	perComp := gc.Gather(0, []float32{float32(compSec)})

	if !leader {
		rel()
		return nil, nil
	}
	// The composited image aliases compositor (or runner-arena) scratch
	// that the next job on this worker will overwrite: deep-copy before
	// releasing the lease.
	final := framebuffer.NewImage(out.W, out.H)
	final.CopyFrom(out)
	rel()
	rr := make([]float64, len(perRank))
	for i, p := range perRank {
		rr[i] = float64(p[0])
	}
	rc := make([]float64, len(perComp))
	for i, p := range perComp {
		rc[i] = float64(p[0])
	}
	return &wireResult{
		JobID:                job.JobID,
		W:                    final.W,
		H:                    final.H,
		In:                   in,
		BuildSeconds:         buildSec,
		RenderSeconds:        rt,
		CompositeSeconds:     ct,
		RankRenderSeconds:    rr,
		RankCompositeSeconds: rc,
	}, final
}

// renderJob runs render under an abort guard: when the attempt's bound
// communicator panics with *comm.AbortError — the deadline expired or a
// member was evicted while this rank was blocked in a collective — the
// abandonment becomes a retryable result on the group leader and a
// stuck-peer report (the world rank this member was blocked on, -1 when
// none) on every rank, instead of crashing the worker loop. Application
// errors still travel through render's error barrier and stay
// non-retryable.
func (st *shardState) renderJob(gc *comm.Comm, job *wireJob) (res *wireResult, img *framebuffer.Image, stuckOn int) {
	stuckOn = -1
	defer func() {
		if p := recover(); p != nil {
			ab, ok := p.(*comm.AbortError)
			if !ok {
				panic(p)
			}
			stuckOn = ab.Peer
			img = nil
			res = nil
			if gc.Rank() == 0 {
				res = &wireResult{JobID: job.JobID, Err: ab.Error(), Retryable: true}
			}
		}
	}()
	res, img = st.render(gc, job)
	return
}

// joinErrors combines the per-rank packed error strings gathered at the
// leader into one message, in rank order.
func joinErrors(parts [][]float32) string {
	msg := ""
	for _, p := range parts {
		b, _, err := unpackBytes(p)
		if err != nil || len(b) == 0 {
			continue
		}
		if msg != "" {
			msg += "; "
		}
		msg += string(b)
	}
	if msg == "" {
		msg = "cluster: frame failed with no rank error"
	}
	return msg
}
