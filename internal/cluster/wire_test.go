package cluster

import (
	"bytes"
	"testing"

	"insitu/internal/core"
	"insitu/internal/framebuffer"
)

func TestPackBytesRoundTrip(t *testing.T) {
	for n := 0; n < 9; n++ {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(17*i + 3)
		}
		// Trailing payload words must survive untouched.
		msg := append(packBytes(b), 1.5, 2.5)
		got, words, err := unpackBytes(msg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("n=%d: round trip %v != %v", n, got, b)
		}
		if rest := msg[words:]; len(rest) != 2 || rest[0] != 1.5 || rest[1] != 2.5 {
			t.Fatalf("n=%d: trailing payload corrupted: %v", n, rest)
		}
	}
}

func TestUnpackBytesRejectsTruncation(t *testing.T) {
	msg := packBytes([]byte("hello world"))
	if _, _, err := unpackBytes(msg[:2]); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, _, err := unpackBytes(nil); err == nil {
		t.Fatal("empty message accepted")
	}
}

func TestResultRoundTrip(t *testing.T) {
	img := framebuffer.NewImage(3, 2)
	for i := range img.Color {
		img.Color[i] = float32(i) / 7
	}
	res := &wireResult{
		JobID: 42, W: 3, H: 2,
		In:                core.Inputs{Pixels: 6, Tasks: 3, AP: 5, AvgAP: 4.5},
		BuildSeconds:      0.25,
		RenderSeconds:     1.5,
		CompositeSeconds:  0.125,
		RankRenderSeconds: []float64{1.5, 0.5, 1},
	}
	msg, err := encodeResult(res, img)
	if err != nil {
		t.Fatal(err)
	}
	got, gimg, err := decodeResult(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.JobID != 42 || got.In.AvgAP != 4.5 || got.RenderSeconds != 1.5 || len(got.RankRenderSeconds) != 3 {
		t.Fatalf("header mangled: %+v", got)
	}
	if gimg.W != 3 || gimg.H != 2 {
		t.Fatalf("image %dx%d", gimg.W, gimg.H)
	}
	for i := range img.Color {
		if gimg.Color[i] != img.Color[i] {
			t.Fatalf("color word %d: %v != %v", i, gimg.Color[i], img.Color[i])
		}
	}

	// Error results carry no image.
	emsg, err := encodeResult(&wireResult{JobID: 7, Err: "boom"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eres, eimg, err := decodeResult(emsg)
	if err != nil || eres.Err != "boom" || eimg != nil {
		t.Fatalf("error result: %+v %v %v", eres, eimg, err)
	}
}

func TestPlacementDistinctAndStable(t *testing.T) {
	job := Job{Backend: "raytracer", Sim: "kripke", Arch: "serial", N: 8, Width: 64, Height: 64, Shards: 3}
	const workers = 5
	m1, err := placeShards(workers, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != 3 {
		t.Fatalf("placement %v", m1)
	}
	seen := map[int]bool{}
	for _, w := range m1 {
		if w < 1 || w > workers {
			t.Fatalf("member %d outside worker range", w)
		}
		if seen[w] {
			t.Fatalf("placement %v reuses a worker", m1)
		}
		seen[w] = true
	}
	// Stable across repeats.
	m2, _ := placeShards(workers, nil, &job)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("placement unstable: %v vs %v", m1, m2)
		}
	}
	// Resolution and workload changes (the degrade ladder's moves) keep
	// shards on the ranks holding their sliced scenes.
	degraded := job
	degraded.Width, degraded.Height, degraded.RTWorkload = 32, 32, 1
	m3, _ := placeShards(workers, nil, &degraded)
	for i := range m1 {
		if m1[i] != m3[i] {
			t.Fatalf("degraded request migrated shards: %v vs %v", m1, m3)
		}
	}
	// Too many shards for the fleet is an error, not a wedge.
	over := job
	over.Shards = workers + 1
	if _, err := placeShards(workers, nil, &over); err == nil {
		t.Fatal("oversharded placement accepted")
	}
}

// TestPlacementCameraAffinity: the shard key excludes the camera, so a
// streaming session's speculative prefetch — the same scene at
// predicted future azimuths and zooms — lands every shard on the ranks
// already holding its sliced scene and warm runner. Speculation across
// a rank fleet inherits rendezvous affinity for free.
func TestPlacementCameraAffinity(t *testing.T) {
	job := Job{Backend: "raytracer", Sim: "kripke", Arch: "serial", N: 8, Width: 64, Height: 64, Shards: 3}
	const workers = 5
	base, err := placeShards(workers, nil, &job)
	if err != nil {
		t.Fatal(err)
	}
	for _, az := range []float64{15, 30, 345, 0.5} {
		for _, zoom := range []float64{1, 1.25, 0.8} {
			moved := job
			moved.Azimuth, moved.Zoom = az, zoom
			m, err := placeShards(workers, nil, &moved)
			if err != nil {
				t.Fatal(err)
			}
			for i := range base {
				if m[i] != base[i] {
					t.Fatalf("camera az=%g zoom=%g migrated shards: %v vs %v", az, zoom, m, base)
				}
			}
		}
	}
}
