package cluster

import (
	"fmt"
	"hash/fnv"
)

// shardKey is the placement identity of one shard: the resolution- and
// workload-independent prefix of the worker-side runner cache key. Keying
// placement on it means a request degraded to a lower resolution or
// workload still lands each shard on the rank already holding its sliced
// scene and prepared device, while distinct (sim, n, shard-count) tuples
// spread across the fleet.
func shardKey(job *Job, shard int) string {
	return fmt.Sprintf("%s|%s|%s|n%d|k%d|s%d", job.Arch, job.Backend, job.Sim, job.N, job.Shards, shard)
}

// placeShards assigns each of k shards a distinct worker rank in
// [1, workers] by rendezvous (highest-random-weight) hashing: shard i
// takes the available worker with the highest hash of (shard key, rank).
// Distinctness is required for correctness, not just balance — a worker
// executes jobs serially, so two shards of one frame on the same rank
// would deadlock in the frame's collectives. The assignment is a pure
// function of the job parameters and the set of live ranks, so repeated
// requests for the same configuration always reuse the same ranks (hot
// runner caches) and the standalone reference path can reproduce the
// grouping.
//
// dead (nil = all live) excludes evicted ranks. The HRW property makes
// re-placement after an eviction minimal: a shard moves only if its
// highest-weight rank was the evicted one; every other shard keeps its
// rank and its warm caches.
func placeShards(workers int, dead func(int) bool, job *Job) ([]int, error) {
	k := job.Shards
	alive := workers
	if dead != nil {
		alive = 0
		for w := 1; w <= workers; w++ {
			if !dead(w) {
				alive++
			}
		}
	}
	if k < 1 || k > alive {
		return nil, fmt.Errorf("cluster: %d shards for %d live workers", k, alive)
	}
	members := make([]int, k)
	taken := make([]bool, workers+1)
	for s := 0; s < k; s++ {
		key := shardKey(job, s)
		best, bestScore := -1, uint64(0)
		for w := 1; w <= workers; w++ {
			if taken[w] || (dead != nil && dead(w)) {
				continue
			}
			h := fnv.New64a()
			fmt.Fprintf(h, "%s|w%d", key, w)
			if score := h.Sum64(); best < 0 || score > bestScore {
				best, bestScore = w, score
			}
		}
		members[s] = best
		taken[best] = true
	}
	return members, nil
}
