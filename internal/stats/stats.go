// Package stats supplies the statistical machinery of the modeling
// methodology (paper §5.3): multiple linear regression by ordinary least
// squares, the R-squared / residual standard deviation diagnostics, the
// Pearson correlation screen, k-fold cross validation, accuracy
// percentile summaries, and Latin-hypercube-style stratified sampling for
// the study design.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Fit is a fitted linear model y ~ X*coef (no implicit intercept: include
// a ones column in X for one).
type Fit struct {
	Coef       []float64
	R2         float64
	AdjR2      float64
	ResidualSD float64
	N          int // observations
	P          int // parameters
}

// Regress fits y ~ X by ordinary least squares via the normal equations
// with partial-pivot Gaussian elimination.
func Regress(X [][]float64, y []float64) (*Fit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: %d rows vs %d responses", n, len(y))
	}
	p := len(X[0])
	if p == 0 {
		return nil, fmt.Errorf("stats: zero predictors")
	}
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), p)
		}
	}
	// Normal equations: (X'X) b = X'y.
	xtx := make([][]float64, p)
	xty := make([]float64, p)
	for i := 0; i < p; i++ {
		xtx[i] = make([]float64, p)
	}
	for r, row := range X {
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	coef, err := solve(xtx, xty)
	if err != nil {
		return nil, err
	}

	// Diagnostics.
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)
	var ssTot, ssRes float64
	for r, row := range X {
		pred := dot(row, coef)
		d := y[r] - pred
		ssRes += d * d
		t := y[r] - ybar
		ssTot += t * t
	}
	fit := &Fit{Coef: coef, N: n, P: p}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	if n > p {
		fit.ResidualSD = math.Sqrt(ssRes / float64(n-p))
		denom := float64(n - p)
		fit.AdjR2 = 1 - (1-fit.R2)*float64(n-1)/denom
	}
	return fit, nil
}

// Predict evaluates the fitted model on one predictor row.
func (f *Fit) Predict(x []float64) float64 { return dot(x, f.Coef) }

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// solve performs Gaussian elimination with partial pivoting on a copy.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system (column %d); predictors may be collinear", col)
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}

// Pearson returns the linear correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CVResult holds cross-validation predictions aligned with the input rows.
type CVResult struct {
	Predicted []float64
	Actual    []float64
}

// KFoldCV runs k-fold cross validation: rows are shuffled with the seed,
// split into k folds, and each fold is predicted by a model fitted to the
// other folds (the paper uses k = 3).
func KFoldCV(k int, X [][]float64, y []float64, seed int64) (*CVResult, error) {
	n := len(X)
	if k < 2 || n < k {
		return nil, fmt.Errorf("stats: cannot %d-fold %d rows", k, n)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	res := &CVResult{Predicted: make([]float64, n), Actual: make([]float64, n)}
	for fold := 0; fold < k; fold++ {
		var trainX [][]float64
		var trainY []float64
		var test []int
		for pos, row := range idx {
			if pos%k == fold {
				test = append(test, row)
			} else {
				trainX = append(trainX, X[row])
				trainY = append(trainY, y[row])
			}
		}
		fit, err := Regress(trainX, trainY)
		if err != nil {
			return nil, fmt.Errorf("stats: fold %d: %w", fold, err)
		}
		for _, row := range test {
			res.Predicted[row] = fit.Predict(X[row])
			res.Actual[row] = y[row]
		}
	}
	return res, nil
}

// ErrorPct returns the paper's signed relative error percentage,
// 100*(actual-predicted)/actual, per row.
func (r *CVResult) ErrorPct() []float64 {
	out := make([]float64, len(r.Actual))
	for i := range out {
		if r.Actual[i] != 0 {
			out[i] = 100 * (r.Actual[i] - r.Predicted[i]) / r.Actual[i]
		}
	}
	return out
}

// WithinPct returns the fraction of rows whose absolute relative error is
// at most p percent.
func (r *CVResult) WithinPct(p float64) float64 {
	if len(r.Actual) == 0 {
		return 0
	}
	count := 0
	for _, e := range r.ErrorPct() {
		if math.Abs(e) <= p {
			count++
		}
	}
	return float64(count) / float64(len(r.Actual))
}

// MeanAbsPct returns the mean absolute relative error percentage.
func (r *CVResult) MeanAbsPct() float64 {
	if len(r.Actual) == 0 {
		return 0
	}
	var sum float64
	for _, e := range r.ErrorPct() {
		sum += math.Abs(e)
	}
	return sum / float64(len(r.Actual))
}

// LatinHypercube returns n stratified samples in [0,1)^dims: each
// dimension is split into n strata with one sample per stratum, randomly
// paired across dimensions (the paper's image/data size sampling).
func LatinHypercube(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dims)
	}
	for d := 0; d < dims; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			out[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return out
}
