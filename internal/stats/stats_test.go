package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegressRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := []float64{2.5, -1.25, 7}
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*5
		X[i] = []float64{x1, x2, 1}
		y[i] = want[0]*x1 + want[1]*x2 + want[2]
	}
	fit, err := Regress(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(fit.Coef[i]-want[i]) > 1e-9 {
			t.Errorf("coef[%d] = %v want %v", i, fit.Coef[i], want[i])
		}
	}
	if fit.R2 < 1-1e-12 {
		t.Errorf("R2 = %v for exact linear data", fit.R2)
	}
	if fit.ResidualSD > 1e-9 {
		t.Errorf("residual SD = %v", fit.ResidualSD)
	}
}

func TestRegressWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		X[i] = []float64{x, 1}
		y[i] = 3*x + 5 + rng.NormFloat64()*2
	}
	fit, err := Regress(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[0]-3) > 0.05 || math.Abs(fit.Coef[1]-5) > 1 {
		t.Errorf("coef = %v", fit.Coef)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if fit.ResidualSD < 1 || fit.ResidualSD > 3 {
		t.Errorf("residual SD = %v, want ~2", fit.ResidualSD)
	}
}

func TestRegressSingularDetected(t *testing.T) {
	// Perfectly collinear predictors.
	X := [][]float64{{1, 2, 1}, {2, 4, 1}, {3, 6, 1}, {4, 8, 1}}
	y := []float64{1, 2, 3, 4}
	if _, err := Regress(X, y); err == nil {
		t.Error("expected singular-system error")
	}
}

func TestRegressShapeErrors(t *testing.T) {
	if _, err := Regress(nil, nil); err == nil {
		t.Error("expected empty error")
	}
	if _, err := Regress([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := Regress([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected ragged error")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v", r)
	}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v", r)
	}
	if r := Pearson(x, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant y should give 0, got %v", r)
	}
}

func TestKFoldCVPredictsLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 90
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		X[i] = []float64{x, 1}
		y[i] = 4*x + 1 + rng.NormFloat64()*0.01
	}
	res, err := KFoldCV(3, X, y, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predicted) != n {
		t.Fatalf("predictions = %d", len(res.Predicted))
	}
	if res.MeanAbsPct() > 1 {
		t.Errorf("mean abs error = %v%%", res.MeanAbsPct())
	}
	if res.WithinPct(5) < 0.99 {
		t.Errorf("within 5%% = %v", res.WithinPct(5))
	}
	// Every row was predicted by a model that never saw it; with near-exact
	// data predictions still track actuals.
	for i := range res.Actual {
		if res.Actual[i] != y[i] {
			t.Fatalf("actuals misaligned at %d", i)
		}
	}
}

func TestKFoldCVErrors(t *testing.T) {
	if _, err := KFoldCV(5, [][]float64{{1}}, []float64{1}, 0); err == nil {
		t.Error("expected too-few-rows error")
	}
}

func TestErrorPctSign(t *testing.T) {
	r := &CVResult{Predicted: []float64{8, 12}, Actual: []float64{10, 10}}
	e := r.ErrorPct()
	if math.Abs(e[0]-20) > 1e-12 || math.Abs(e[1]+20) > 1e-12 {
		t.Errorf("errors = %v (want +20, -20)", e)
	}
	if w := r.WithinPct(25); w != 1 {
		t.Errorf("within 25 = %v", w)
	}
	if w := r.WithinPct(10); w != 0 {
		t.Errorf("within 10 = %v", w)
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	n := 16
	pts := LatinHypercube(n, 2, 99)
	if len(pts) != n {
		t.Fatalf("points = %d", len(pts))
	}
	// Each dimension must have exactly one point per stratum.
	for d := 0; d < 2; d++ {
		seen := make([]bool, n)
		for _, p := range pts {
			if p[d] < 0 || p[d] >= 1 {
				t.Fatalf("sample out of range: %v", p[d])
			}
			k := int(p[d] * float64(n))
			if seen[k] {
				t.Fatalf("dimension %d stratum %d hit twice", d, k)
			}
			seen[k] = true
		}
	}
}

func TestLatinHypercubeDeterministic(t *testing.T) {
	a := LatinHypercube(8, 3, 5)
	b := LatinHypercube(8, 3, 5)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("LHS not deterministic for fixed seed")
			}
		}
	}
}
