package study

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// Options configures a study run.
type Options struct {
	// Workers caps how many configurations are measured concurrently.
	// Values below 1 mean sequential execution, which reproduces the
	// paper's one-at-a-time measurement discipline exactly; higher values
	// trade some measurement isolation for wall-clock speed on full
	// plans.
	Workers int
	// Progress, when non-nil, receives every completed row as it
	// finishes. Calls are serialized by the runner, so the callback may
	// mutate shared state without its own locking; completion order is
	// nondeterministic under concurrency (use Progress.Index for the plan
	// position).
	Progress func(Progress)
	// Exec overrides the per-configuration executor (default RunConfig).
	// It must be safe for concurrent use when Workers > 1. Intended for
	// dry runs and deterministic tests of the runner itself.
	Exec func(Config) (Row, error)
}

// Progress is one streamed completion event.
type Progress struct {
	// Index is the completed configuration's position in the plan.
	Index int
	// Done counts completed configurations so far, including this one.
	Done int
	// Total is the plan length.
	Total int
	// Row is the finished measurement.
	Row Row
}

// LogProgress returns a Progress callback writing the harness's standard
// per-row log line to w.
func LogProgress(w io.Writer) func(Progress) {
	return func(p Progress) {
		cfg := p.Row.Config
		fmt.Fprintf(w, "[%3d/%3d] %-7s %-10s %-10s tasks=%d n=%d img=%d render=%.4fs\n",
			p.Done, p.Total, cfg.Arch, cfg.Renderer, cfg.Sim,
			cfg.Tasks, cfg.N, cfg.ImageSize, p.Row.Sample.RenderTime)
	}
}

// RunContext executes the plan on a pool of Workers goroutines, streaming
// completions through Options.Progress and returning the rows ordered by
// plan index regardless of completion order. The first configuration
// error cancels the remaining work, as does ctx; queued configurations
// are abandoned, in-flight ones finish and are discarded.
func RunContext(ctx context.Context, plan []Config, opts Options) ([]Row, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(plan) {
		workers = len(plan)
	}
	exec := opts.Exec
	if exec == nil {
		exec = RunConfig
	}
	if len(plan) == 0 {
		return []Row{}, ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	rows := make([]Row, len(plan))
	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if runCtx.Err() != nil {
					return
				}
				row, err := exec(plan[i])
				if err != nil {
					fail(fmt.Errorf("study: config %d (%+v): %w", i, plan[i], err))
					return
				}
				rows[i] = row
				mu.Lock()
				done++
				if opts.Progress != nil {
					opts.Progress(Progress{Index: i, Done: done, Total: len(plan), Row: row})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range plan {
		select {
		case indices <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Shard splits a plan for multi-process runs: it returns the index-th of
// count interleaved shards. Interleaving (rather than contiguous blocks)
// balances the expensive large-N configurations across shards, since the
// plan orders configurations by architecture and renderer, not cost. The
// union of all shards is the plan; shards are disjoint.
func Shard(plan []Config, index, count int) []Config {
	if count <= 1 {
		return plan
	}
	if index < 0 || index >= count {
		return nil
	}
	var out []Config
	for i := index; i < len(plan); i += count {
		out = append(out, plan[i])
	}
	return out
}
