package study

import (
	"context"
	"testing"

	"insitu/internal/scenario"
)

// BenchmarkStudySmallPlan measures the full study path — simulation
// step, scene assembly, backend dispatch, frame discipline, reduction —
// over one tiny configuration per registered backend. It is the
// regression guard for the measurement harness itself; run via
// `make bench` with -benchtime 1x.
func BenchmarkStudySmallPlan(b *testing.B) {
	b.ReportAllocs()
	var plan []Config
	for _, r := range scenario.Names() {
		plan = append(plan, Config{
			Arch: "cpu", Renderer: r, Sim: "kripke",
			Tasks: 1, ImageSize: 48, N: 8, Frames: 2,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := RunContext(context.Background(), plan, Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(plan) {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkPlanGeneration isolates the plan generator (registry
// iteration + Latin hypercube sampling), which runs on every repro and
// calibrate invocation.
func BenchmarkPlanGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := Plan(false); len(p) == 0 {
			b.Fatal("empty plan")
		}
	}
}
