package study

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insitu/internal/core"
)

// fakeExec is a deterministic, pure executor: the row is a function of
// the configuration alone, so sequential and parallel runs must agree
// byte for byte.
func fakeExec(cfg Config) (Row, error) {
	s := core.Sample{
		Arch:     cfg.Arch,
		Renderer: cfg.Renderer,
		In:       Inputs0(cfg),
	}
	s.In.O = float64(12 * cfg.N * cfg.N)
	s.In.AP = float64(cfg.ImageSize*cfg.ImageSize) / 2
	s.RenderTime = 1e-6 * float64(cfg.N) * float64(cfg.ImageSize)
	if cfg.Tasks > 1 {
		s.CompositeTime = 1e-7 * float64(cfg.ImageSize*cfg.ImageSize)
	}
	return Row{Config: cfg, Sample: s}, nil
}

// TestParallelMatchesSequentialByteIdentical is the determinism contract:
// for the same plan and executor, the parallel runner returns rows that
// are byte-identical (content and ordering) to the sequential runner's,
// regardless of completion order. Run under -race via the Makefile's race
// target.
func TestParallelMatchesSequentialByteIdentical(t *testing.T) {
	plan := Plan(true)
	if len(plan) < 16 {
		t.Fatalf("short plan too small (%d) to exercise concurrency", len(plan))
	}
	seq, err := RunContext(context.Background(), plan, Options{Workers: 1, Exec: fakeExec})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := RunContext(context.Background(), plan, Options{Workers: workers, Exec: fakeExec})
		if err != nil {
			t.Fatal(err)
		}
		seqJSON, err := json.Marshal(seq)
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if string(seqJSON) != string(parJSON) {
			t.Fatalf("workers=%d: parallel rows differ from sequential rows", workers)
		}
	}
}

// TestRunnerStreamsSerializedProgress: every completion is streamed
// exactly once, Done counts monotonically, and callbacks never overlap
// (the runner serializes them, so the callback needs no locking).
func TestRunnerStreamsSerializedProgress(t *testing.T) {
	plan := Plan(true)[:24]
	var (
		seen     = map[int]bool{}
		lastDone int
		inCb     atomic.Int32
	)
	_, err := RunContext(context.Background(), plan, Options{
		Workers: 8,
		Exec:    fakeExec,
		Progress: func(p Progress) {
			if inCb.Add(1) != 1 {
				t.Error("progress callbacks overlap")
			}
			defer inCb.Add(-1)
			if seen[p.Index] {
				t.Errorf("index %d streamed twice", p.Index)
			}
			seen[p.Index] = true
			if p.Done != lastDone+1 || p.Total != len(plan) {
				t.Errorf("done=%d (last %d) total=%d", p.Done, lastDone, p.Total)
			}
			lastDone = p.Done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(plan) {
		t.Errorf("streamed %d of %d rows", len(seen), len(plan))
	}
}

// TestRunnerCancellation: cancelling the context stops the run promptly
// and reports the context error; configurations never started stay
// unexecuted.
func TestRunnerCancellation(t *testing.T) {
	plan := make([]Config, 64)
	for i := range plan {
		plan[i] = Config{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: 32, N: 8}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := RunContext(ctx, plan, Options{
		Workers: 2,
		Exec: func(cfg Config) (Row, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return fakeExec(cfg)
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= int32(len(plan)) {
		t.Errorf("cancellation did not stop the run (started %d/%d)", n, len(plan))
	}
}

// TestRunnerFirstErrorCancelsAndIdentifiesConfig: the first failure wins,
// carries the plan index, and stops the remaining work.
func TestRunnerFirstErrorCancelsAndIdentifiesConfig(t *testing.T) {
	plan := Plan(true)[:32]
	boom := errors.New("boom")
	var ran atomic.Int32
	_, err := RunContext(context.Background(), plan, Options{
		Workers: 4,
		Exec: func(cfg Config) (Row, error) {
			n := ran.Add(1)
			if n == 5 {
				return Row{}, boom
			}
			time.Sleep(time.Millisecond)
			return fakeExec(cfg)
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ran.Load() >= int32(len(plan)) {
		t.Error("error did not stop the remaining work")
	}
}

// TestRunnerConcurrencyIsReal: with slow work and N workers, wall clock
// must beat the sequential bound by a wide margin.
func TestRunnerConcurrencyIsReal(t *testing.T) {
	const itemMillis, items, workers = 20, 16, 8
	plan := make([]Config, items)
	var peak, cur atomic.Int32
	start := time.Now()
	_, err := RunContext(context.Background(), plan, Options{
		Workers: workers,
		Exec: func(cfg Config) (Row, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(itemMillis * time.Millisecond)
			cur.Add(-1)
			return Row{Config: cfg}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	sequential := itemMillis * items * time.Millisecond
	if elapsed > sequential/2 {
		t.Errorf("parallel run took %v, sequential bound is %v", elapsed, sequential)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want >= 2", peak.Load())
	}
}

// TestShard: shards partition the plan and interleave it.
func TestShard(t *testing.T) {
	plan := Plan(true)
	const count = 3
	var union []Config
	total := 0
	for i := 0; i < count; i++ {
		s := Shard(plan, i, count)
		total += len(s)
		union = append(union, s...)
	}
	if total != len(plan) {
		t.Fatalf("shards cover %d of %d configs", total, len(plan))
	}
	// Reassemble by interleave and compare.
	rebuilt := make([]Config, len(plan))
	pos := 0
	for i := 0; i < count; i++ {
		for j, cfg := range Shard(plan, i, count) {
			rebuilt[i+j*count] = cfg
			pos++
		}
	}
	if fmt.Sprintf("%+v", rebuilt) != fmt.Sprintf("%+v", plan) {
		t.Error("shards do not reassemble into the plan")
	}
	if got := Shard(plan, 0, 1); len(got) != len(plan) {
		t.Errorf("count=1 shard = %d configs", len(got))
	}
	if got := Shard(plan, 5, 3); got != nil {
		t.Errorf("out-of-range shard = %v", got)
	}
}

// TestRunMeasuresRealConfigsInParallel runs two tiny real configurations
// through the pool to keep the integration honest (everything else above
// uses the fake executor).
func TestRunMeasuresRealConfigsInParallel(t *testing.T) {
	plan := []Config{
		{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: 48, N: 8, Frames: 2},
		{Arch: "cpu", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: 48, N: 8, Frames: 2},
	}
	var mu sync.Mutex
	got := 0
	rows, err := RunContext(context.Background(), plan, Options{
		Workers: 2,
		Progress: func(p Progress) {
			mu.Lock()
			got++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || got != 2 {
		t.Fatalf("rows=%d streamed=%d", len(rows), got)
	}
	for i, r := range rows {
		if r.Config.Renderer != plan[i].Renderer {
			t.Errorf("row %d out of order: %s", i, r.Config.Renderer)
		}
		if r.Sample.RenderTime <= 0 {
			t.Errorf("row %d: render time %v", i, r.Sample.RenderTime)
		}
	}
}
