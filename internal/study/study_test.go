package study

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insitu/internal/core"
)

func tinyPlan() []Config {
	return []Config{
		{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.RayTrace, Sim: "lulesh", Tasks: 2, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Raster, Sim: "cloverleaf", Tasks: 2, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Volume, Sim: "cloverleaf", Tasks: 2, ImageSize: 48, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: 48, N: 10, Frames: 2},
	}
}

func TestRunTinyPlanProducesSamples(t *testing.T) {
	var log bytes.Buffer
	rows, err := Run(tinyPlan(), &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		s := r.Sample
		if s.RenderTime <= 0 {
			t.Errorf("row %d: render time %v", i, s.RenderTime)
		}
		if s.In.O <= 0 || s.In.AP <= 0 {
			t.Errorf("row %d: inputs O=%v AP=%v", i, s.In.O, s.In.AP)
		}
		if s.In.Pixels != float64(r.Config.ImageSize*r.Config.ImageSize) {
			t.Errorf("row %d: pixels %v", i, s.In.Pixels)
		}
		if r.Config.Tasks > 1 && s.CompositeTime <= 0 {
			t.Errorf("row %d: multi-task run has no compositing time", i)
		}
		if r.Config.Tasks == 1 && s.CompositeTime != 0 {
			t.Errorf("row %d: single-task run has compositing time", i)
		}
		if s.Renderer == core.RayTrace && s.BuildTime <= 0 {
			t.Errorf("row %d: no BVH build time", i)
		}
		if s.Renderer == core.Raster && (s.In.VO <= 0 || s.In.PPT <= 0) {
			t.Errorf("row %d: raster inputs VO=%v PPT=%v", i, s.In.VO, s.In.PPT)
		}
		if s.Renderer == core.Volume && (s.In.SPR <= 0 || s.In.CS <= 0) {
			t.Errorf("row %d: volume inputs SPR=%v CS=%v", i, s.In.SPR, s.In.CS)
		}
	}
	if !strings.Contains(log.String(), "raytracer") {
		t.Error("progress log empty")
	}
}

func TestVolumeOnUnstructuredRejected(t *testing.T) {
	_, err := RunConfig(Config{
		Arch: "cpu", Renderer: core.Volume, Sim: "lulesh",
		Tasks: 1, ImageSize: 32, N: 8, Frames: 2,
	})
	if err == nil {
		t.Error("expected error for volume rendering the Lagrangian proxy")
	}
}

func TestPlanShapes(t *testing.T) {
	full := Plan(false)
	short := Plan(true)
	if len(short) >= len(full) {
		t.Errorf("short plan (%d) should be smaller than full (%d)", len(short), len(full))
	}
	// Structured volume + lulesh must not appear.
	for _, cfg := range full {
		if cfg.Renderer == core.Volume && cfg.Sim == "lulesh" {
			t.Error("plan contains invalid volume+lulesh combination")
		}
		if cfg.N < 8 || cfg.ImageSize < 32 {
			t.Errorf("degenerate config %+v", cfg)
		}
	}
	// Both architectures present.
	archs := map[string]bool{}
	for _, cfg := range full {
		archs[cfg.Arch] = true
	}
	if !archs["serial"] || !archs["cpu"] {
		t.Errorf("plan architectures = %v", archs)
	}
}

func TestWriteCSV(t *testing.T) {
	rows, err := Run(tinyPlan()[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "arch,renderer") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestSamplesFeedModelFitting(t *testing.T) {
	// A slightly larger plan so every model group has enough rows; this is
	// the end-to-end integration of harness -> models.
	plan := []Config{}
	for _, n := range []int{8, 10, 12, 14, 16} {
		for _, img := range []int{40, 64, 88} {
			plan = append(plan,
				Config{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				Config{Arch: "cpu", Renderer: core.Raster, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				Config{Arch: "cpu", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
			)
		}
	}
	rows, err := Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.FitModels(Samples(rows))
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range set.Models {
		// The rasterizer's CPU fit is legitimately the weakest (the paper's
		// Table 12 reports R² = 0.67 for CPU rasterization vs > 0.94 for
		// everything else); at this test's tiny sizes scheduler noise
		// dominates it, so only the other models are held to a floor.
		if m.Renderer != core.Raster && m.Fit.R2 < 0.3 {
			t.Errorf("%s: R2 = %v (model explains almost nothing)", k, m.Fit.R2)
		}
		if math.IsNaN(m.Fit.R2) {
			t.Errorf("%s: R2 is NaN", k)
		}
		pred := m.Predict(rows[0].Sample.In)
		if pred < 0 && pred < -0.01 {
			t.Errorf("%s: strongly negative prediction %v", k, pred)
		}
	}
}
