package study

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/scenario"
	"insitu/internal/sim"
)

func tinyPlan() []Config {
	return []Config{
		{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.RayTrace, Sim: "lulesh", Tasks: 2, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Raster, Sim: "cloverleaf", Tasks: 2, ImageSize: 64, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Volume, Sim: "cloverleaf", Tasks: 2, ImageSize: 48, N: 10, Frames: 2},
		{Arch: "cpu", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: 48, N: 10, Frames: 2},
	}
}

func TestRunTinyPlanProducesSamples(t *testing.T) {
	var log bytes.Buffer
	rows, err := Run(tinyPlan(), &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		s := r.Sample
		if s.RenderTime <= 0 {
			t.Errorf("row %d: render time %v", i, s.RenderTime)
		}
		if s.In.O <= 0 || s.In.AP <= 0 {
			t.Errorf("row %d: inputs O=%v AP=%v", i, s.In.O, s.In.AP)
		}
		if s.In.Pixels != float64(r.Config.ImageSize*r.Config.ImageSize) {
			t.Errorf("row %d: pixels %v", i, s.In.Pixels)
		}
		if r.Config.Tasks > 1 && s.CompositeTime <= 0 {
			t.Errorf("row %d: multi-task run has no compositing time", i)
		}
		if r.Config.Tasks == 1 && s.CompositeTime != 0 {
			t.Errorf("row %d: single-task run has compositing time", i)
		}
		if s.Renderer == core.RayTrace && s.BuildTime <= 0 {
			t.Errorf("row %d: no BVH build time", i)
		}
		if s.Renderer == core.Raster && (s.In.VO <= 0 || s.In.PPT <= 0) {
			t.Errorf("row %d: raster inputs VO=%v PPT=%v", i, s.In.VO, s.In.PPT)
		}
		if s.Renderer == core.Volume && (s.In.SPR <= 0 || s.In.CS <= 0) {
			t.Errorf("row %d: volume inputs SPR=%v CS=%v", i, s.In.SPR, s.In.CS)
		}
	}
	if !strings.Contains(log.String(), "raytracer") {
		t.Error("progress log empty")
	}
}

func TestVolumeOnUnstructuredRejected(t *testing.T) {
	_, err := RunConfig(Config{
		Arch: "cpu", Renderer: core.Volume, Sim: "lulesh",
		Tasks: 1, ImageSize: 32, N: 8, Frames: 2,
	})
	if err == nil {
		t.Error("expected error for volume rendering the Lagrangian proxy")
	}
}

// TestLHSScaleSpansInclusiveRange is the regression test for the
// truncation-biased sample mapping: lo+int(u*(hi-lo)) could never reach
// hi, so the documented upper bounds nHi/imgHi were unreachable. The
// corrected mapping must span [lo, hi] inclusively, hit both endpoints,
// stay monotone in u, and give every value equal mass.
func TestLHSScaleSpansInclusiveRange(t *testing.T) {
	const lo, hi = 12, 36
	counts := map[int]int{}
	const steps = 100000
	prev := lo
	for i := 0; i < steps; i++ {
		u := float64(i) / steps // uniform grid over [0, 1)
		v := lhsScale(u, lo, hi)
		if v < lo || v > hi {
			t.Fatalf("u=%v: %d outside [%d, %d]", u, v, lo, hi)
		}
		if v < prev {
			t.Fatalf("u=%v: mapping not monotone (%d after %d)", u, v, prev)
		}
		prev = v
		counts[v]++
	}
	if counts[lo] == 0 {
		t.Errorf("lower bound %d never sampled", lo)
	}
	if counts[hi] == 0 {
		t.Errorf("upper bound %d never sampled (the original bug)", hi)
	}
	want := steps / (hi - lo + 1)
	for v := lo; v <= hi; v++ {
		if c := counts[v]; c < want*9/10 || c > want*11/10 {
			t.Errorf("value %d drawn %d times, want ~%d (uniformity)", v, c, want)
		}
	}
	// Degenerate range collapses to lo.
	if got := lhsScale(0.99, 7, 7); got != 7 {
		t.Errorf("lhsScale on empty range = %d", got)
	}
	// Exact-1.0 input (not produced by LatinHypercube, but guard it).
	if got := lhsScale(1.0, lo, hi); got != hi {
		t.Errorf("lhsScale(1.0) = %d, want %d", got, hi)
	}
}

// TestPlanReachesUpperBounds: with enough Latin-hypercube pairs the plan's
// sampled sizes must cover the top cell of the design space, not stop one
// stratum short of it.
func TestPlanReachesUpperBounds(t *testing.T) {
	const nLo, nHi = 12, 36
	const imgLo, imgHi = 80, 384
	maxN, maxImg := 0, 0
	minN, minImg := 1<<30, 1<<30
	for _, cfg := range Plan(false) {
		if cfg.N > maxN {
			maxN = cfg.N
		}
		if cfg.ImageSize > maxImg {
			maxImg = cfg.ImageSize
		}
		if cfg.N < minN {
			minN = cfg.N
		}
		if cfg.ImageSize < minImg {
			minImg = cfg.ImageSize
		}
		if cfg.N < nLo || cfg.N > nHi || cfg.ImageSize < imgLo || cfg.ImageSize > imgHi {
			t.Fatalf("config outside the documented bounds: %+v", cfg)
		}
	}
	// With 5 strata, the top stratum covers the top fifth of each range;
	// its sample must land there (the old mapping could only reach the
	// value one full stratum below hi at best).
	if topN := nHi - (nHi-nLo+1)/5; maxN < topN {
		t.Errorf("max sampled N = %d, top stratum starts at %d", maxN, topN)
	}
	if topImg := imgHi - (imgHi-imgLo+1)/5; maxImg < topImg {
		t.Errorf("max sampled image = %d, top stratum starts at %d", maxImg, topImg)
	}
}

func TestPlanShapes(t *testing.T) {
	full := Plan(false)
	short := Plan(true)
	if len(short) >= len(full) {
		t.Errorf("short plan (%d) should be smaller than full (%d)", len(short), len(full))
	}
	// Structured volume + lulesh must not appear.
	for _, cfg := range full {
		if cfg.Renderer == core.Volume && cfg.Sim == "lulesh" {
			t.Error("plan contains invalid volume+lulesh combination")
		}
		if cfg.N < 8 || cfg.ImageSize < 32 {
			t.Errorf("degenerate config %+v", cfg)
		}
	}
	// Both architectures present.
	archs := map[string]bool{}
	for _, cfg := range full {
		archs[cfg.Arch] = true
	}
	if !archs["serial"] || !archs["cpu"] {
		t.Errorf("plan architectures = %v", archs)
	}
}

// TestPlanSamplesScenarioAxis: the plan is generated from the scenario
// backend registry, so every registered backend — including the
// unstructured volume backend, which the old hardcoded combo list could
// never reach — is sampled against every proxy it can consume.
func TestPlanSamplesScenarioAxis(t *testing.T) {
	got := map[string]bool{}
	for _, cfg := range Plan(false) {
		got[string(cfg.Renderer)+"/"+cfg.Sim] = true
	}
	for _, r := range scenario.Names() {
		b, err := scenario.Lookup(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sim.Names() {
			key := string(r) + "/" + s
			want := !(b.NeedsStructured() && !sim.Structured(s))
			if got[key] != want {
				t.Errorf("combination %s: in plan = %v, want %v", key, got[key], want)
			}
		}
	}
	// The proof point: the tetrahedral volume backend reaches even the
	// Lagrangian proxy, which previously had no volume coverage at all.
	if !got[string(scenario.VolumeUnstructured)+"/lulesh"] {
		t.Error("volume-unstructured not sampled against lulesh")
	}
}

// TestUnknownRendererInConfigRejected: a config naming an unregistered
// renderer fails with an error listing what is registered, before any
// simulation work happens.
func TestUnknownRendererInConfigRejected(t *testing.T) {
	_, err := RunConfig(Config{
		Arch: "cpu", Renderer: "teapot", Sim: "kripke",
		Tasks: 1, ImageSize: 32, N: 8, Frames: 2,
	})
	if err == nil {
		t.Fatal("unknown renderer accepted")
	}
	if !strings.Contains(err.Error(), "teapot") || !strings.Contains(err.Error(), "registered") {
		t.Errorf("error does not identify the unknown renderer: %v", err)
	}
}

// TestReadCSVRoundTrip: WriteCSV -> ReadCSV must reproduce every
// configuration and sample field the CSV records, so an archived corpus
// can be re-fitted or replayed into a Calibrator offline.
func TestReadCSVRoundTrip(t *testing.T) {
	plan := Plan(true)[:12]
	var rows []Row
	for i, cfg := range plan {
		row, err := fakeExec(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Exercise every numeric column with per-row variation so the
		// round-tripped corpus stays regressable.
		row.Sample.In.VO = 7.5 + float64(i)
		row.Sample.In.PPT = 3.25 + 0.5*float64(i%5)
		row.Sample.In.SPR = 123.5 - float64(i)
		row.Sample.In.CS = float64(17 + i)
		row.Sample.BuildTime = 0.0125 * float64(1+i)
		rows = append(rows, row)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("read %d rows, wrote %d", len(got), len(rows))
	}
	for i := range rows {
		want := rows[i]
		// Frames and Cycles are run-time knobs the CSV does not record.
		want.Config.Frames = 0
		want.Config.Cycles = 0
		if got[i] != want {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
	// The round-tripped corpus must be fit-ready.
	if _, _, err := core.FitAvailable(Samples(got)); err != nil {
		t.Errorf("round-tripped corpus not fittable: %v", err)
	}

	// Error paths: wrong header and malformed numbers fail with context.
	if _, err := ReadCSV(strings.NewReader("bogus,header\n")); err == nil {
		t.Error("wrong header accepted")
	}
	malformed := "arch,renderer,sim,tasks,n,image,objects,active_pixels,visible_objects,ppt,spr,cs,avg_ap,build_s,render_s,composite_s\ncpu,raytracer,kripke,notanint,10,64,1,1,0,0,0,0,1,0,0.1,0\n"
	if _, err := ReadCSV(strings.NewReader(malformed)); err == nil {
		t.Error("malformed integer accepted")
	} else if !strings.Contains(err.Error(), "tasks") {
		t.Errorf("error does not name the bad column: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	rows, err := Run(tinyPlan()[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "arch,renderer") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestSamplesFeedModelFitting(t *testing.T) {
	// A slightly larger plan so every model group has enough rows; this is
	// the end-to-end integration of harness -> models.
	plan := []Config{}
	for _, n := range []int{8, 10, 12, 14, 16} {
		for _, img := range []int{40, 64, 88} {
			plan = append(plan,
				Config{Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				Config{Arch: "cpu", Renderer: core.Raster, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				Config{Arch: "cpu", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
			)
		}
	}
	rows, err := Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.FitModels(Samples(rows))
	if err != nil {
		t.Fatal(err)
	}
	for k, m := range set.Models {
		// The rasterizer's CPU fit is legitimately the weakest (the paper's
		// Table 12 reports R² = 0.67 for CPU rasterization vs > 0.94 for
		// everything else); at this test's tiny sizes scheduler noise
		// dominates it, so only the other models are held to a floor.
		if m.Renderer != core.Raster && m.Fit.R2 < 0.3 {
			t.Errorf("%s: R2 = %v (model explains almost nothing)", k, m.Fit.R2)
		}
		if math.IsNaN(m.Fit.R2) {
			t.Errorf("%s: R2 is NaN", k)
		}
		pred := m.Predict(rows[0].Sample.In)
		if pred < 0 && pred < -0.01 {
			t.Errorf("%s: strongly negative prediction %v", k, pred)
		}
	}
}
