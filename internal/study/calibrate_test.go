package study

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// syntheticVolumeSamples plants a known linear volume model so refits are
// verifiable without running the measurement harness.
func syntheticVolumeSamples(arch string, n int, seed int64, c0, c1, c2 float64) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Sample, n)
	for i := range out {
		ap := float64(5000 + rng.Intn(50000))
		cs := float64(16 + rng.Intn(64))
		spr := float64(50 + rng.Intn(300))
		in := core.Inputs{O: cs * cs * cs, AP: ap, SPR: spr, CS: cs, Pixels: 4 * ap, AvgAP: ap, Tasks: 1}
		out[i] = core.Sample{
			Arch: arch, Renderer: core.Volume, In: in,
			RenderTime: c0*ap*cs + c1*ap*spr + c2,
		}
	}
	return out
}

func TestCalibratorRefitsOnCadenceAndPublishes(t *testing.T) {
	var (
		mu        sync.Mutex
		published []*registry.Snapshot
	)
	c := &Calibrator{
		Source:     "test",
		RefitEvery: 6,
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			mu.Lock()
			published = append(published, s)
			mu.Unlock()
			return nil
		},
	}
	samples := syntheticVolumeSamples("cpu", 12, 3, 5e-10, 4e-9, 2e-4)

	// Below cadence: accepted but not published.
	corpus, pub, reason, err := c.Observe(samples[:3])
	if err != nil {
		t.Fatal(err)
	}
	if corpus != 3 || pub || reason == "" {
		t.Fatalf("corpus=%d published=%v reason=%q", corpus, pub, reason)
	}

	// Crossing the cadence triggers a refit and publish.
	corpus, pub, _, err = c.Observe(samples[3:9])
	if err != nil {
		t.Fatal(err)
	}
	if corpus != 9 || !pub {
		t.Fatalf("corpus=%d published=%v", corpus, pub)
	}
	if len(published) != 1 {
		t.Fatalf("published %d snapshots", len(published))
	}
	snap := published[0]
	if snap.Source != "test" || len(snap.Models) != 1 {
		t.Fatalf("snapshot: source=%q models=%d", snap.Source, len(snap.Models))
	}
	// The refit recovers the planted coefficients.
	set, err := snap.ModelSet()
	if err != nil {
		t.Fatal(err)
	}
	coef := set.Models[core.Key("cpu", core.Volume)].Fit.Coef
	for i, want := range []float64{5e-10, 4e-9, 2e-4} {
		if math.Abs(coef[i]-want) > math.Abs(want)*0.05+1e-12 {
			t.Errorf("coef[%d] = %v, want ~%v", i, coef[i], want)
		}
	}

	// Forced refit publishes the trailing rows immediately.
	if _, _, _, err := c.Observe(samples[9:]); err != nil {
		t.Fatal(err)
	}
	pub, _, err = c.Refit()
	if err != nil || !pub {
		t.Fatalf("forced refit: published=%v err=%v", pub, err)
	}
	if c.CorpusSize() != 12 {
		t.Errorf("corpus size = %d", c.CorpusSize())
	}
}

func TestCalibratorThinCorpusIsPendingNotError(t *testing.T) {
	c := &Calibrator{
		Source:  "test",
		Publish: func(*registry.Snapshot, uint64) error { t.Error("published from a 2-sample corpus"); return nil },
	}
	samples := syntheticVolumeSamples("cpu", 2, 5, 5e-10, 4e-9, 2e-4)
	corpus, pub, reason, err := c.Observe(samples)
	if err != nil {
		t.Fatal(err)
	}
	if pub || corpus != 2 || reason == "" {
		t.Errorf("corpus=%d published=%v reason=%q", corpus, pub, reason)
	}
}

// TestCalibratorMergesBaseSnapshot: a corpus that can only refit one group
// must publish a snapshot that still carries the base's other models, its
// compositing model, and the mapping constant the corpus cannot
// recalibrate — a continuous publish refines the served set, never
// shrinks it.
func TestCalibratorMergesBaseSnapshot(t *testing.T) {
	// Base: a full snapshot fitted from the core synthetic corpus shape —
	// build it from planted volume + raytracer samples.
	baseSamples := syntheticVolumeSamples("cpu", 8, 11, 1e-9, 8e-9, 1e-4)
	baseSamples = append(baseSamples, syntheticVolumeSamples("serial", 8, 13, 2e-9, 9e-9, 3e-4)...)
	baseSet, err := core.FitModels(baseSamples)
	if err != nil {
		t.Fatal(err)
	}
	baseMp := core.Mapping{FillFraction: 0.61, SPRBase: 290}
	base := registry.FromModelSet(baseSet, baseMp, "base")

	var got *registry.Snapshot
	c := &Calibrator{
		Source: "refit",
		Base:   func() (*registry.Snapshot, uint64) { return base, 7 },
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			if baseGen != 7 {
				t.Errorf("publish saw base generation %d, want 7", baseGen)
			}
			got = s
			return nil
		},
	}
	// Fresh corpus refits only cpu/volume (different planted constants).
	fresh := syntheticVolumeSamples("cpu", 8, 17, 3e-9, 2e-9, 5e-4)
	_, pub, _, err := c.Observe(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !pub || got == nil {
		t.Fatal("refit did not publish")
	}
	if len(got.Models) != 2 {
		t.Fatalf("merged snapshot has %d models, want 2 (refit cpu + carried serial)", len(got.Models))
	}
	set, err := got.ModelSet()
	if err != nil {
		t.Fatal(err)
	}
	refit := set.Models[core.Key("cpu", core.Volume)]
	if math.Abs(refit.Fit.Coef[0]-3e-9) > 3e-10 {
		t.Errorf("cpu/volume not refitted: c0 = %v", refit.Fit.Coef[0])
	}
	carried := set.Models[core.Key("serial", core.Volume)]
	if carried == nil {
		t.Fatal("serial/volume dropped by the merge")
	}
	if math.Abs(carried.Fit.Coef[0]-2e-9) > 2e-10 {
		t.Errorf("serial/volume altered by the merge: c0 = %v", carried.Fit.Coef[0])
	}
	// The corpus has no surface samples, so FillFraction must come from
	// the base, not the paper default; SPRBase is recalibrated.
	if got.Mapping.FillFraction != 0.61 {
		t.Errorf("FillFraction = %v, want the base's 0.61", got.Mapping.FillFraction)
	}
	if got.Mapping.SPRBase == 290 {
		t.Error("SPRBase not recalibrated from the fresh volume corpus")
	}
	// Models stay sorted by key, the registry snapshot invariant.
	for i := 1; i < len(got.Models); i++ {
		a := core.Key(got.Models[i-1].Arch, core.Renderer(got.Models[i-1].Renderer))
		b := core.Key(got.Models[i].Arch, core.Renderer(got.Models[i].Renderer))
		if a >= b {
			t.Errorf("merged models unsorted: %s before %s", a, b)
		}
	}
}

// TestCalibratorMaxCorpusSlidesWindow: a bounded calibrator retains only
// the newest MaxCorpus samples, so long-running ingestion neither grows
// memory nor refit cost without bound.
func TestCalibratorMaxCorpusSlidesWindow(t *testing.T) {
	c := &Calibrator{
		Source:    "test",
		MaxCorpus: 10,
		Publish:   func(*registry.Snapshot, uint64) error { return nil },
	}
	old := syntheticVolumeSamples("cpu", 10, 31, 1e-9, 1e-9, 1e-4)
	if corpus, _, _, err := c.Observe(old); err != nil || corpus != 10 {
		t.Fatalf("corpus=%d err=%v", corpus, err)
	}
	// Planted change: the window must forget the old process entirely.
	fresh := syntheticVolumeSamples("cpu", 10, 37, 6e-9, 3e-9, 8e-4)
	corpus, pub, _, err := c.Observe(fresh)
	if err != nil || corpus != 10 || !pub {
		t.Fatalf("corpus=%d published=%v err=%v", corpus, pub, err)
	}
	var got *registry.Snapshot
	c.Publish = func(s *registry.Snapshot, _ uint64) error { got = s; return nil }
	if _, _, err := c.Refit(); err != nil {
		t.Fatal(err)
	}
	set, err := got.ModelSet()
	if err != nil {
		t.Fatal(err)
	}
	c0 := set.Models[core.Key("cpu", core.Volume)].Fit.Coef[0]
	if math.Abs(c0-6e-9) > 6e-10 {
		t.Errorf("window still mixes evicted samples: c0 = %v, want ~6e-9", c0)
	}
}

func TestCalibratorPublishFailureIsAnError(t *testing.T) {
	c := &Calibrator{
		Source:  "test",
		Publish: func(*registry.Snapshot, uint64) error { return fmt.Errorf("disk full") },
	}
	_, _, _, err := c.Observe(syntheticVolumeSamples("cpu", 8, 23, 5e-10, 4e-9, 2e-4))
	if err == nil {
		t.Fatal("publish failure swallowed")
	}
	// The pending counter was not reset, so the next observation retries.
	ok := false
	c.Publish = func(*registry.Snapshot, uint64) error { ok = true; return nil }
	if _, pub, _, err := c.Observe(syntheticVolumeSamples("cpu", 1, 29, 5e-10, 4e-9, 2e-4)); err != nil || !pub {
		t.Fatalf("retry after publish failure: published=%v err=%v", pub, err)
	}
	if !ok {
		t.Error("publish hook not retried")
	}
}

// TestCalibratorRetriesStalePublish: when a conditional publish loses the
// race to a concurrent registry load (registry.ErrStale), the calibrator
// re-reads the base, re-merges, and retries — the concurrent load's
// models survive into the published snapshot.
func TestCalibratorRetriesStalePublish(t *testing.T) {
	reg := registry.New(16)
	baseSamples := syntheticVolumeSamples("serial", 8, 13, 2e-9, 9e-9, 3e-4)
	baseSet, err := core.FitModels(baseSamples)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Load(registry.FromModelSet(baseSet, core.DefaultMapping(), "base")); err != nil {
		t.Fatal(err)
	}

	// A "concurrent" reload lands between the calibrator's base read and
	// its publish: simulate by bumping the registry on the first publish
	// attempt, before handing the snapshot to PublishIf.
	interfered := false
	c := &Calibrator{
		Source: "refit",
		Base: func() (*registry.Snapshot, uint64) {
			return reg.Snapshot(), reg.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			if !interfered {
				interfered = true
				// The interloper installs a snapshot with an extra model.
				moreSamples := append(append([]core.Sample(nil), baseSamples...),
					syntheticVolumeSamples("mic", 8, 19, 4e-9, 7e-9, 2e-4)...)
				moreSet, err := core.FitModels(moreSamples)
				if err != nil {
					t.Fatal(err)
				}
				if err := reg.Load(registry.FromModelSet(moreSet, core.DefaultMapping(), "interloper")); err != nil {
					t.Fatal(err)
				}
			}
			return reg.PublishIf(s, baseGen)
		},
	}
	_, pub, _, err := c.Observe(syntheticVolumeSamples("cpu", 8, 17, 3e-9, 2e-9, 5e-4))
	if err != nil {
		t.Fatal(err)
	}
	if !pub {
		t.Fatal("refit did not publish after retry")
	}
	snap := reg.Snapshot()
	if snap.Source != "refit" {
		t.Fatalf("serving source %q", snap.Source)
	}
	keys := map[string]bool{}
	for _, d := range snap.Models {
		keys[core.Key(d.Arch, core.Renderer(d.Renderer))] = true
	}
	for _, want := range []string{"cpu|volume", "serial|volume", "mic|volume"} {
		want = strings.ReplaceAll(want, "|", "/")
		if !keys[want] {
			t.Errorf("published snapshot lost %s (have %v)", want, keys)
		}
	}
}
