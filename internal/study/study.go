// Package study is the experiment harness of §5.4: it generates the
// rendering study plan (architectures x renderers x simulations x task
// counts x Latin-hypercube-sampled data/image sizes), runs each
// configuration on a simulated MPI world with per-phase instrumentation,
// and reduces the measurements to model-fitting samples using the paper's
// discipline — render several frames, discard the first, keep the slowest
// task's average.
package study

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"insitu/internal/comm"
	"insitu/internal/composite"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
	"insitu/internal/sim"
	"insitu/internal/stats"
	"insitu/internal/strawman"
)

// Config is one study test configuration.
type Config struct {
	Arch      string
	Renderer  core.Renderer
	Sim       string
	Tasks     int
	ImageSize int // square images
	N         int // grid points per axis per task
	Frames    int // rendered frames; the first is discarded
	Cycles    int // simulation cycles before rendering
}

// Row couples a configuration with its measured sample.
type Row struct {
	Config Config
	Sample core.Sample
}

// Plan generates the study configurations. short shrinks the plan for
// quick runs while preserving its structure.
func Plan(short bool) []Config {
	archs := []string{"serial", "cpu"}
	taskCounts := []int{1, 2, 4}
	pairs := 5
	nLo, nHi := 12, 36
	imgLo, imgHi := 80, 384
	frames := 4
	if short {
		taskCounts = []int{1, 2}
		pairs = 3
		nLo, nHi = 10, 26
		imgLo, imgHi = 64, 224
		frames = 3
	}
	// Renderer/simulation combinations that make sense (the structured
	// volume renderer cannot consume the Lagrangian proxy's unstructured
	// mesh, mirroring the paper's "not all combinations made sense").
	type combo struct {
		r core.Renderer
		s string
	}
	combos := []combo{
		{core.RayTrace, "cloverleaf"}, {core.RayTrace, "kripke"}, {core.RayTrace, "lulesh"},
		{core.Raster, "cloverleaf"}, {core.Raster, "kripke"}, {core.Raster, "lulesh"},
		{core.Volume, "cloverleaf"}, {core.Volume, "kripke"},
	}
	lhs := stats.LatinHypercube(pairs, 2, 20160101)
	var plan []Config
	for _, arch := range archs {
		for _, cb := range combos {
			for _, tasks := range taskCounts {
				for _, u := range lhs {
					n := lhsScale(u[0], nLo, nHi)
					img := lhsScale(u[1], imgLo, imgHi)
					plan = append(plan, Config{
						Arch: arch, Renderer: cb.r, Sim: cb.s,
						Tasks: tasks, ImageSize: img, N: n,
						Frames: frames, Cycles: 1,
					})
				}
			}
		}
	}
	return plan
}

// lhsScale maps a unit sample u in [0,1) to an integer spanning the
// closed range [lo, hi]: the unit interval is split into hi-lo+1 equal
// cells so every value — both bounds included — is reachable with equal
// probability. The previous lo+int(u*(hi-lo)) form could never produce
// hi, silently truncating the sampled design space.
func lhsScale(u float64, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	v := lo + int(u*float64(hi-lo+1))
	if v > hi {
		v = hi // u is < 1, but guard the exact-boundary float case
	}
	return v
}

// Run executes every configuration sequentially, logging progress to w
// (nil for silent), and returns the measured rows. It is the
// single-worker form of RunContext, kept for callers that want the
// paper's serial measurement discipline.
func Run(plan []Config, w io.Writer) ([]Row, error) {
	opts := Options{Workers: 1}
	if w != nil {
		opts.Progress = LogProgress(w)
	}
	return RunContext(context.Background(), plan, opts)
}

// Samples extracts the model-fitting samples.
func Samples(rows []Row) []core.Sample {
	out := make([]core.Sample, len(rows))
	for i, r := range rows {
		out[i] = r.Sample
	}
	return out
}

// RunConfig measures one configuration on a fresh world.
func RunConfig(cfg Config) (Row, error) {
	if cfg.Frames < 2 {
		cfg.Frames = 2
	}
	if cfg.Cycles < 1 {
		cfg.Cycles = 1
	}
	world := comm.NewWorld(cfg.Tasks)
	samples, err := comm.RunCollect(world, func(c *comm.Comm) (core.Sample, error) {
		return runTask(cfg, c)
	})
	if err != nil {
		return Row{}, err
	}
	return Row{Config: cfg, Sample: samples[0]}, nil
}

// runTask is one task's share of a configuration; all returned samples
// agree because the measurements are reduced across the world.
func runTask(cfg Config, c *comm.Comm) (core.Sample, error) {
	dev, err := device.Profile(cfg.Arch)
	if err != nil {
		return core.Sample{}, err
	}
	sm, err := sim.New(cfg.Sim, cfg.N, cfg.Tasks, c.Rank())
	if err != nil {
		return core.Sample{}, err
	}
	for i := 0; i < cfg.Cycles; i++ {
		sm.Step()
	}
	node := conduit.NewNode()
	sm.Publish(node)
	pm, err := strawman.ParseMesh(node)
	if err != nil {
		return core.Sample{}, err
	}
	vals, err := pm.FieldValues(sm.PrimaryField())
	if err != nil {
		return core.Sample{}, err
	}

	// Globally consistent camera and scalar range.
	lb := pm.LocalBounds()
	gb := lb
	flo, fhi := fieldRange(vals)
	if cfg.Tasks > 1 {
		gb.Min.X = c.AllReduceMin(lb.Min.X)
		gb.Min.Y = c.AllReduceMin(lb.Min.Y)
		gb.Min.Z = c.AllReduceMin(lb.Min.Z)
		gb.Max.X = c.AllReduceMax(lb.Max.X)
		gb.Max.Y = c.AllReduceMax(lb.Max.Y)
		gb.Max.Z = c.AllReduceMax(lb.Max.Z)
		flo = c.AllReduceMin(flo)
		fhi = c.AllReduceMax(fhi)
	}
	cam := render.OrbitCamera(gb, 30, 20, 1.0)

	sample := core.Sample{
		Arch:     cfg.Arch,
		Renderer: cfg.Renderer,
		In:       Inputs0(cfg), // pixels/tasks prefilled
	}

	var renderFrame func() (time.Duration, *framebuffer.Image, error)
	op := composite.DepthOp

	switch cfg.Renderer {
	case core.RayTrace, core.Raster:
		tri, err := pm.Surface(sm.PrimaryField(), vals)
		if err != nil {
			return core.Sample{}, err
		}
		tri.ScalarMin, tri.ScalarMax = flo, fhi
		if cfg.Renderer == core.RayTrace {
			raytrace.New(dev, tri) // warm-up build (cold-cache effects)
			rdr := raytrace.New(dev, tri)
			sample.BuildTime = rdr.BVH.BuildTime.Seconds()
			opts := raytrace.Options{
				Width: cfg.ImageSize, Height: cfg.ImageSize,
				Camera: cam, Workload: raytrace.Workload2,
			}
			renderFrame = func() (time.Duration, *framebuffer.Image, error) {
				start := time.Now()
				img, st, err := rdr.Render(opts)
				if err != nil {
					return 0, nil, err
				}
				sample.In.O = float64(st.Objects)
				sample.In.AP = float64(st.ActivePixels)
				return time.Since(start), img, nil
			}
		} else {
			rdr := raster.New(dev, tri)
			opts := raster.Options{Width: cfg.ImageSize, Height: cfg.ImageSize, Camera: cam}
			renderFrame = func() (time.Duration, *framebuffer.Image, error) {
				start := time.Now()
				img, st, err := rdr.Render(opts)
				if err != nil {
					return 0, nil, err
				}
				sample.In.O = float64(st.Objects)
				sample.In.AP = float64(st.ActivePixels)
				sample.In.VO = float64(st.VisibleObjects)
				sample.In.PPT = st.PPT()
				return time.Since(start), img, nil
			}
		}
	case core.Volume:
		op = composite.BlendOp
		if pm.Grid == nil {
			return core.Sample{}, fmt.Errorf("volume renderer needs a structured block (sim %q)", cfg.Sim)
		}
		fieldName := sm.PrimaryField()
		if _, ok := pm.Grid.Fields[fieldName]; !ok {
			if err := pm.Grid.AddField(fieldName, mesh.VertexAssoc, vals); err != nil {
				return core.Sample{}, err
			}
		}
		vr, err := volume.NewStructured(dev, pm.Grid, fieldName)
		if err != nil {
			return core.Sample{}, err
		}
		opts := volume.StructuredOptions{
			Width: cfg.ImageSize, Height: cfg.ImageSize,
			Camera: cam, FieldRange: [2]float64{flo, fhi},
		}
		renderFrame = func() (time.Duration, *framebuffer.Image, error) {
			start := time.Now()
			img, st, err := vr.Render(opts)
			if err != nil {
				return 0, nil, err
			}
			sample.In.O = float64(st.Objects)
			sample.In.AP = float64(st.ActivePixels)
			sample.In.SPR = st.SPR()
			sample.In.CS = float64(st.CellsSpanned)
			return time.Since(start), img, nil
		}
	default:
		return core.Sample{}, fmt.Errorf("unknown renderer %q", cfg.Renderer)
	}

	// Visibility order for volume compositing.
	var order []int
	if op == composite.BlendOp && cfg.Tasks > 1 {
		depth := lb.Center().Sub(cam.Position).Length()
		parts := c.Gather(0, []float32{float32(depth)})
		orderF := make([]float32, cfg.Tasks)
		if c.Rank() == 0 {
			depths := make([]float64, cfg.Tasks)
			for r, p := range parts {
				depths[r] = float64(p[0])
			}
			for i, r := range composite.VisibilityOrder(depths) {
				orderF[i] = float32(r)
			}
		}
		orderF = c.Bcast(0, orderF)
		order = make([]int, len(orderF))
		for i, f := range orderF {
			order[i] = int(f)
		}
	}

	// Warm-up frame: discarded, as in the paper, and used to calibrate
	// how many measured frames are needed for a stable mean (fast renders
	// repeat more to beat scheduler noise).
	oneFrame := func() (float64, float64, error) {
		var elapsed time.Duration
		var img *framebuffer.Image
		var err error
		if cfg.Tasks > 1 {
			// Tasks render in turn so each measurement sees dedicated
			// hardware, matching the paper's one-task-per-node setup (this
			// sandbox shares two cores among all simulated tasks).
			for r := 0; r < c.Size(); r++ {
				if c.Rank() == r {
					elapsed, img, err = renderFrame()
				}
				c.Barrier()
			}
		} else {
			elapsed, img, err = renderFrame()
		}
		if err != nil {
			return 0, 0, err
		}
		var compElapsed time.Duration
		if cfg.Tasks > 1 {
			_, st, err := composite.BinarySwap().Composite(c, img, op, order)
			if err != nil {
				return 0, 0, err
			}
			compElapsed = st.Elapsed
		}
		rt := elapsed.Seconds()
		ct := compElapsed.Seconds()
		if cfg.Tasks > 1 {
			// Rendering is only as fast as the slowest task.
			rt = c.AllReduceMax(rt)
			ct = c.AllReduceMax(ct)
		}
		return rt, ct, nil
	}
	warm, _, err := oneFrame()
	if err != nil {
		return core.Sample{}, err
	}
	kept := cfg.Frames - 1
	if target := int(math.Ceil(0.1 / math.Max(warm, 1e-4))); target > kept {
		kept = target
	}
	if kept > 16 {
		kept = 16
	}
	var renderSum, compSum float64
	for frame := 0; frame < kept; frame++ {
		rt, ct, err := oneFrame()
		if err != nil {
			return core.Sample{}, err
		}
		renderSum += rt
		compSum += ct
	}
	sample.RenderTime = renderSum / float64(kept)
	sample.CompositeTime = compSum / float64(kept)

	// Average active pixels across tasks feeds the compositing model.
	if cfg.Tasks > 1 {
		sample.In.AvgAP = c.AllReduceSum(sample.In.AP) / float64(cfg.Tasks)
		// The model's AP is the slowest task's; reduce for consistency.
		sample.In.AP = c.AllReduceMax(sample.In.AP)
		sample.In.O = c.AllReduceMax(sample.In.O)
		if cfg.Renderer == core.Raster {
			sample.In.VO = c.AllReduceMax(sample.In.VO)
			sample.In.PPT = c.AllReduceMax(sample.In.PPT)
		}
		if cfg.Renderer == core.Volume {
			sample.In.SPR = c.AllReduceMax(sample.In.SPR)
		}
		sample.BuildTime = c.AllReduceMax(sample.BuildTime)
	} else {
		sample.In.AvgAP = sample.In.AP
	}
	return sample, nil
}

// Inputs0 prefills the configuration-known inputs.
func Inputs0(cfg Config) core.Inputs {
	return core.Inputs{
		Pixels: float64(cfg.ImageSize * cfg.ImageSize),
		Tasks:  cfg.Tasks,
	}
}

func fieldRange(vals []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi >= lo) {
		return 0, 1
	}
	return lo, hi
}

// WriteCSV dumps rows for offline analysis.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"arch", "renderer", "sim", "tasks", "n", "image",
		"objects", "active_pixels", "visible_objects", "ppt", "spr", "cs",
		"avg_ap", "build_s", "render_s", "composite_s",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range rows {
		rec := []string{
			r.Config.Arch, string(r.Config.Renderer), r.Config.Sim,
			strconv.Itoa(r.Config.Tasks), strconv.Itoa(r.Config.N), strconv.Itoa(r.Config.ImageSize),
			f(r.Sample.In.O), f(r.Sample.In.AP), f(r.Sample.In.VO), f(r.Sample.In.PPT),
			f(r.Sample.In.SPR), f(r.Sample.In.CS), f(r.Sample.In.AvgAP),
			f(r.Sample.BuildTime), f(r.Sample.RenderTime), f(r.Sample.CompositeTime),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
