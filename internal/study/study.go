// Package study is the experiment harness of §5.4: it generates the
// rendering study plan (architectures x scenario backends x simulations
// x task counts x Latin-hypercube-sampled data/image sizes), runs each
// configuration on a simulated MPI world with per-phase instrumentation,
// and reduces the measurements to model-fitting samples using the paper's
// discipline — render several frames, discard the first, keep the slowest
// task's average.
//
// The renderers themselves come from the scenario backend registry: the
// plan samples every registered backend against every simulation whose
// published block it can consume, so a newly registered backend is
// measured, fitted, and published without study changes.
package study

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"insitu/internal/comm"
	"insitu/internal/composite"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/render"
	"insitu/internal/scenario"
	"insitu/internal/sim"
	"insitu/internal/stats"
	"insitu/internal/vecmath"
)

// Config is one study test configuration.
type Config struct {
	Arch      string
	Renderer  core.Renderer
	Sim       string
	Tasks     int
	ImageSize int // square images
	N         int // grid points per axis per task
	Frames    int // rendered frames; the first is discarded
	Cycles    int // simulation cycles before rendering
}

// Row couples a configuration with its measured sample.
type Row struct {
	Config Config
	Sample core.Sample
}

// Plan generates the study configurations over the scenario axis: every
// registered backend is paired with every simulation whose block shape
// it accepts. short shrinks the plan for quick runs while preserving its
// structure.
func Plan(short bool) []Config {
	archs := []string{"serial", "cpu"}
	taskCounts := []int{1, 2, 4}
	pairs := 5
	nLo, nHi := 12, 36
	imgLo, imgHi := 80, 384
	frames := 4
	if short {
		taskCounts = []int{1, 2}
		pairs = 3
		nLo, nHi = 10, 26
		imgLo, imgHi = 64, 224
		frames = 3
	}
	type combo struct {
		r core.Renderer
		s string
	}
	var combos []combo
	for _, r := range scenario.Names() {
		b, err := scenario.Lookup(r)
		if err != nil {
			continue
		}
		for _, s := range sim.Names() {
			if b.NeedsStructured() && !sim.Structured(s) {
				continue
			}
			combos = append(combos, combo{r, s})
		}
	}
	lhs := stats.LatinHypercube(pairs, 2, 20160101)
	var plan []Config
	for _, arch := range archs {
		for _, cb := range combos {
			for _, tasks := range taskCounts {
				for _, u := range lhs {
					n := lhsScale(u[0], nLo, nHi)
					img := lhsScale(u[1], imgLo, imgHi)
					plan = append(plan, Config{
						Arch: arch, Renderer: cb.r, Sim: cb.s,
						Tasks: tasks, ImageSize: img, N: n,
						Frames: frames, Cycles: 1,
					})
				}
			}
		}
	}
	return plan
}

// lhsScale maps a unit sample u in [0,1) to an integer spanning the
// closed range [lo, hi]: the unit interval is split into hi-lo+1 equal
// cells so every value — both bounds included — is reachable with equal
// probability. The previous lo+int(u*(hi-lo)) form could never produce
// hi, silently truncating the sampled design space.
func lhsScale(u float64, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	v := lo + int(u*float64(hi-lo+1))
	if v > hi {
		v = hi // u is < 1, but guard the exact-boundary float case
	}
	return v
}

// Run executes every configuration sequentially, logging progress to w
// (nil for silent), and returns the measured rows. It is the
// single-worker form of RunContext, kept for callers that want the
// paper's serial measurement discipline.
func Run(plan []Config, w io.Writer) ([]Row, error) {
	opts := Options{Workers: 1}
	if w != nil {
		opts.Progress = LogProgress(w)
	}
	return RunContext(context.Background(), plan, opts)
}

// Samples extracts the model-fitting samples.
func Samples(rows []Row) []core.Sample {
	out := make([]core.Sample, len(rows))
	for i, r := range rows {
		out[i] = r.Sample
	}
	return out
}

// RunConfig measures one configuration on a fresh world.
func RunConfig(cfg Config) (Row, error) {
	if cfg.Frames < 2 {
		cfg.Frames = 2
	}
	if cfg.Cycles < 1 {
		cfg.Cycles = 1
	}
	world := comm.NewWorld(cfg.Tasks)
	samples, err := comm.RunCollect(world, func(c *comm.Comm) (core.Sample, error) {
		return runTask(cfg, c)
	})
	if err != nil {
		return Row{}, err
	}
	return Row{Config: cfg, Sample: samples[0]}, nil
}

// buildScene runs one task's share of the simulation and assembles the
// shared scenario scene: stepped proxy, parsed block, globally reduced
// bounds and scalar range, and the study's canonical orbit camera. The
// returned local bounds feed the volume visibility ordering.
func buildScene(cfg Config, c *comm.Comm) (*scenario.Scene, localGeom, error) {
	var lg localGeom
	dev, err := device.Profile(cfg.Arch)
	//insitu:collective-ok cfg is identical on every task, so a profile failure is rank-uniform
	if err != nil {
		return nil, lg, err
	}
	sm, err := sim.New(cfg.Sim, cfg.N, cfg.Tasks, c.Rank())
	//insitu:collective-ok sim construction is deterministic on the shared cfg; failures are rank-uniform
	if err != nil {
		return nil, lg, err
	}
	for i := 0; i < cfg.Cycles; i++ {
		sm.Step()
	}
	node := conduit.NewNode()
	sm.Publish(node)
	pm, err := scenario.ParseMesh(node)
	//insitu:collective-ok every task publishes the same conduit schema, so a parse failure is rank-uniform
	if err != nil {
		return nil, lg, err
	}
	vals, err := pm.FieldValues(sm.PrimaryField())
	//insitu:collective-ok the primary field is published by every task; a lookup failure is rank-uniform
	if err != nil {
		return nil, lg, err
	}

	// Globally consistent camera and scalar range.
	lb := pm.LocalBounds()
	gb := lb
	flo, fhi := scenario.FieldRange(vals)
	if cfg.Tasks > 1 {
		gb.Min.X = c.AllReduceMin(lb.Min.X)
		gb.Min.Y = c.AllReduceMin(lb.Min.Y)
		gb.Min.Z = c.AllReduceMin(lb.Min.Z)
		gb.Max.X = c.AllReduceMax(lb.Max.X)
		gb.Max.Y = c.AllReduceMax(lb.Max.Y)
		gb.Max.Z = c.AllReduceMax(lb.Max.Z)
		flo = c.AllReduceMin(flo)
		fhi = c.AllReduceMax(fhi)
	}
	cam := render.OrbitCamera(gb, 30, 20, 1.0)

	sc := scenario.NewScene(dev, pm, sm.PrimaryField(), vals, cam, cfg.ImageSize, cfg.ImageSize)
	sc.FieldLo, sc.FieldHi = flo, fhi
	lg.bounds = lb
	lg.camera = cam
	return sc, lg, nil
}

// localGeom carries the task-local geometry facts the compositing path
// needs alongside the scene.
type localGeom struct {
	bounds vecmath.AABB
	camera render.Camera
}

// runTask is one task's share of a configuration; all returned samples
// agree because the measurements are reduced across the world. The
// renderer-specific work — geometry preparation, frame rendering, model
// input extraction — is entirely the scenario backend's.
func runTask(cfg Config, c *comm.Comm) (core.Sample, error) {
	backend, err := scenario.Lookup(cfg.Renderer)
	//insitu:collective-ok the renderer registry is process-global and cfg is shared; failures are rank-uniform
	if err != nil {
		return core.Sample{}, err
	}
	sc, lg, err := buildScene(cfg, c)
	//insitu:collective-ok buildScene failures are rank-uniform (see its per-site justifications)
	if err != nil {
		return core.Sample{}, err
	}
	// Release the device's persistent worker pool when the measurement is
	// done; the study churns through one device per configuration.
	defer sc.Dev.Close()
	runner, err := backend.Prepare(sc)
	//insitu:collective-ok Prepare failures are config-shaped (backend/mesh-kind mismatch), identical on every task
	if err != nil {
		return core.Sample{}, fmt.Errorf("preparing %s for sim %q: %w", cfg.Renderer, cfg.Sim, err)
	}

	sample := core.Sample{
		Arch:     cfg.Arch,
		Renderer: cfg.Renderer,
		In:       Inputs0(cfg), // pixels/tasks prefilled
	}
	sample.BuildTime = runner.BuildSeconds()
	op := backend.CompositeOp()

	// Visibility order for volume compositing.
	var order []int
	if op == composite.BlendOp && cfg.Tasks > 1 {
		depth := lg.bounds.Center().Sub(lg.camera.Position).Length()
		parts := c.Gather(0, []float32{float32(depth)})
		orderF := make([]float32, cfg.Tasks)
		if c.Rank() == 0 {
			depths := make([]float64, cfg.Tasks)
			for r, p := range parts {
				depths[r] = float64(p[0])
			}
			for i, r := range composite.VisibilityOrder(depths) {
				orderF[i] = float32(r)
			}
		}
		orderF = c.Bcast(0, orderF)
		order = make([]int, len(orderF))
		for i, f := range orderF {
			order[i] = int(f)
		}
	}

	// One compositor per task, reused across every frame of the
	// configuration so its per-rank encode/decode scratch stays warm.
	compositor := composite.BinarySwap()

	// Warm-up frame: discarded, as in the paper (and doubly necessary
	// under the pooled renderers: the first frame pays the arena
	// allocations that steady-state frames never see), and used to
	// calibrate how many measured frames are needed for a stable mean
	// (fast renders repeat more to beat scheduler noise).
	// agree is the two-phase error barrier: every task reduces a failure
	// flag before anyone acts on a rank-local error, so no task is left
	// blocking in a collective its peers skipped.
	agree := func(err error) bool {
		flag := 0.0
		if err != nil {
			flag = 1
		}
		if cfg.Tasks > 1 {
			flag = c.AllReduceMax(flag)
		}
		return flag > 0
	}
	oneFrame := func() (float64, float64, error) {
		var elapsed time.Duration
		var img *framebuffer.Image
		var err error
		if cfg.Tasks > 1 {
			// Tasks render in turn so each measurement sees dedicated
			// hardware, matching the paper's one-task-per-node setup (this
			// sandbox shares two cores among all simulated tasks).
			for r := 0; r < c.Size(); r++ {
				if c.Rank() == r {
					elapsed, img, err = runner.RenderFrame(&sample.In)
				}
				c.Barrier()
			}
		} else {
			elapsed, img, err = runner.RenderFrame(&sample.In)
		}
		if agree(err) {
			if err == nil {
				err = fmt.Errorf("peer task failed rendering")
			}
			return 0, 0, err
		}
		var compElapsed time.Duration
		if cfg.Tasks > 1 {
			_, st, cerr := compositor.Composite(c, img, op, order)
			if agree(cerr) {
				if cerr == nil {
					cerr = fmt.Errorf("peer task failed compositing")
				}
				return 0, 0, cerr
			}
			compElapsed = st.Elapsed
		}
		rt := elapsed.Seconds()
		ct := compElapsed.Seconds()
		if cfg.Tasks > 1 {
			// Rendering is only as fast as the slowest task.
			rt = c.AllReduceMax(rt)
			ct = c.AllReduceMax(ct)
		}
		return rt, ct, nil
	}
	warm, _, err := oneFrame()
	//insitu:collective-ok oneFrame errors are already collectively agreed via its agree() barrier
	if err != nil {
		return core.Sample{}, err
	}
	kept := cfg.Frames - 1
	if target := int(math.Ceil(0.1 / math.Max(warm, 1e-4))); target > kept {
		kept = target
	}
	if kept > 16 {
		kept = 16
	}
	var renderSum, compSum float64
	for frame := 0; frame < kept; frame++ {
		rt, ct, err := oneFrame()
		//insitu:collective-ok oneFrame errors are already collectively agreed via its agree() barrier
		if err != nil {
			return core.Sample{}, err
		}
		renderSum += rt
		compSum += ct
	}
	sample.RenderTime = renderSum / float64(kept)
	sample.CompositeTime = compSum / float64(kept)

	// Average active pixels across tasks feeds the compositing model; the
	// model's per-task inputs are the slowest task's, so every workload
	// input reduces by max regardless of which backend filled it (unset
	// inputs stay zero).
	if cfg.Tasks > 1 {
		sample.In.AvgAP = c.AllReduceSum(sample.In.AP) / float64(cfg.Tasks)
		sample.In.AP = c.AllReduceMax(sample.In.AP)
		sample.In.O = c.AllReduceMax(sample.In.O)
		sample.In.VO = c.AllReduceMax(sample.In.VO)
		sample.In.PPT = c.AllReduceMax(sample.In.PPT)
		sample.In.SPR = c.AllReduceMax(sample.In.SPR)
		sample.In.CS = c.AllReduceMax(sample.In.CS)
		sample.BuildTime = c.AllReduceMax(sample.BuildTime)
	} else {
		sample.In.AvgAP = sample.In.AP
	}
	return sample, nil
}

// Inputs0 prefills the configuration-known inputs.
func Inputs0(cfg Config) core.Inputs {
	return core.Inputs{
		Pixels: float64(cfg.ImageSize * cfg.ImageSize),
		Tasks:  cfg.Tasks,
	}
}

// csvHeader is the WriteCSV column layout; ReadCSV validates against it.
var csvHeader = []string{
	"arch", "renderer", "sim", "tasks", "n", "image",
	"objects", "active_pixels", "visible_objects", "ppt", "spr", "cs",
	"avg_ap", "build_s", "render_s", "composite_s",
}

// WriteCSV dumps rows for offline analysis.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	// Shortest round-trippable encoding: the CSV is an archive that ReadCSV
	// re-fits from, so truncating precision would change refitted
	// coefficients.
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rows {
		rec := []string{
			r.Config.Arch, string(r.Config.Renderer), r.Config.Sim,
			strconv.Itoa(r.Config.Tasks), strconv.Itoa(r.Config.N), strconv.Itoa(r.Config.ImageSize),
			f(r.Sample.In.O), f(r.Sample.In.AP), f(r.Sample.In.VO), f(r.Sample.In.PPT),
			f(r.Sample.In.SPR), f(r.Sample.In.CS), f(r.Sample.In.AvgAP),
			f(r.Sample.BuildTime), f(r.Sample.RenderTime), f(r.Sample.CompositeTime),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV is the inverse of WriteCSV: it parses archived rows back into
// fitting-ready form so a stored corpus can be re-fitted or replayed
// into a Calibrator without re-measuring. Frames and Cycles are run-time
// knobs not recorded in the CSV and come back zero.
func ReadCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("study: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("study: CSV has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("study: CSV column %d is %q, want %q", i, header[i], col)
		}
	}
	var rows []Row
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("study: CSV line %d: %w", line, err)
		}
		atoi := func(col int) (int, error) {
			v, err := strconv.Atoi(rec[col])
			if err != nil {
				return 0, fmt.Errorf("study: CSV line %d, column %q: %w", line, csvHeader[col], err)
			}
			return v, nil
		}
		atof := func(col int) (float64, error) {
			v, err := strconv.ParseFloat(rec[col], 64)
			if err != nil {
				return 0, fmt.Errorf("study: CSV line %d, column %q: %w", line, csvHeader[col], err)
			}
			return v, nil
		}
		var row Row
		row.Config.Arch = rec[0]
		row.Config.Renderer = core.Renderer(rec[1])
		row.Config.Sim = rec[2]
		if row.Config.Tasks, err = atoi(3); err != nil {
			return nil, err
		}
		if row.Config.N, err = atoi(4); err != nil {
			return nil, err
		}
		if row.Config.ImageSize, err = atoi(5); err != nil {
			return nil, err
		}
		row.Sample.Arch = row.Config.Arch
		row.Sample.Renderer = row.Config.Renderer
		row.Sample.In = Inputs0(row.Config)
		for _, field := range []struct {
			col int
			dst *float64
		}{
			{6, &row.Sample.In.O}, {7, &row.Sample.In.AP},
			{8, &row.Sample.In.VO}, {9, &row.Sample.In.PPT},
			{10, &row.Sample.In.SPR}, {11, &row.Sample.In.CS},
			{12, &row.Sample.In.AvgAP}, {13, &row.Sample.BuildTime},
			{14, &row.Sample.RenderTime}, {15, &row.Sample.CompositeTime},
		} {
			if *field.dst, err = atof(field.col); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
