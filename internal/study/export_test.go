package study

import (
	"path/filepath"
	"testing"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// exportPlan measures enough real configurations for every model group to
// fit (FitModels needs four rows per group).
func exportPlan() []Config {
	var plan []Config
	for _, n := range []int{8, 10, 12} {
		for _, img := range []int{40, 56} {
			plan = append(plan,
				Config{Arch: "serial", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				Config{Arch: "serial", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
			)
		}
	}
	return plan
}

// TestExportModelsRoundTrip proves the study -> registry bridge: a
// snapshot exported from measured rows loads back into a model set whose
// predictions match the directly fitted one exactly.
func TestExportModelsRoundTrip(t *testing.T) {
	rows, err := Run(exportPlan(), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	snap, err := ExportModels(rows, "study-test", path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Source != "study-test" || len(snap.Models) != 2 {
		t.Fatalf("snapshot: source=%q models=%d", snap.Source, len(snap.Models))
	}

	// Refit directly and compare predictions on the measured inputs.
	samples := Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := registry.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := loaded.ModelSet()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		k := core.Key(s.Arch, s.Renderer)
		if got, want := set2.Models[k].Predict(s.In), set.Models[k].Predict(s.In); got != want {
			t.Fatalf("%s: loaded predict %v, fitted %v", k, got, want)
		}
	}
	if got, want := loaded.CalibratedMapping(), core.CalibrateMapping(samples); got != want {
		t.Fatalf("mapping: loaded %+v, calibrated %+v", got, want)
	}

	// Fitting an empty corpus is an error, not an empty snapshot.
	if _, err := FitSnapshot(nil, "empty"); err == nil {
		t.Error("empty corpus exported")
	}
}
