package study

import (
	"context"
	"testing"

	"insitu/internal/scenario"
)

// TestConcurrentRealMeasurements drives the real measurement path — sim
// step, scene assembly, pooled renderers with persistent device workers,
// per-task compositors — through RunContext with concurrent workers, one
// tiny configuration per registered backend. With the stubbed-executor
// runner tests this completes the race coverage of the pooled model; it
// is exercised under the race detector via `make race` / `make ci`.
func TestConcurrentRealMeasurements(t *testing.T) {
	var plan []Config
	for _, r := range scenario.Names() {
		plan = append(plan, Config{
			Arch: "cpu", Renderer: r, Sim: "kripke",
			Tasks: 1, ImageSize: 32, N: 6, Frames: 2,
		})
		// A two-task configuration also exercises the compositor's
		// per-rank scratch concurrently with the other worker's frames.
		plan = append(plan, Config{
			Arch: "cpu", Renderer: r, Sim: "kripke",
			Tasks: 2, ImageSize: 32, N: 6, Frames: 2,
		})
	}
	rows, err := RunContext(context.Background(), plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(plan) {
		t.Fatalf("rows = %d, want %d", len(rows), len(plan))
	}
	for i, row := range rows {
		if row.Sample.RenderTime <= 0 {
			t.Errorf("row %d (%s/%s): render time %v not positive",
				i, row.Config.Renderer, row.Config.Arch, row.Sample.RenderTime)
		}
		if row.Config.Tasks > 1 && row.Sample.CompositeTime < 0 {
			t.Errorf("row %d: negative composite time", i)
		}
	}
}
