package study

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// Calibrator closes the measure → fit → serve loop continuously: measured
// samples stream in through Observe, accumulate into a corpus, and every
// RefitEvery new samples the models are refitted and published as a fresh
// registry snapshot. Groups too thin to fit yet are carried over from the
// Base snapshot, so a partially calibrated publish never serves fewer
// models than before. Safe for concurrent observers.
type Calibrator struct {
	// Source labels published snapshots (registry.Snapshot.Source).
	Source string
	// RefitEvery is how many new samples must accumulate before another
	// refit is attempted; values below 1 refit on every batch.
	RefitEvery int
	// MaxCorpus bounds the retained corpus; when a new batch pushes past
	// it, the oldest samples are dropped (a sliding window, so a
	// long-running ingestion path neither grows without bound nor refits
	// over an ever-larger corpus). 0 means unbounded, which is fine for
	// finite study runs.
	MaxCorpus int
	// Base, when non-nil, supplies the currently served snapshot and the
	// generation it was taken at. Models (and the compositing model) that
	// the corpus cannot fit yet are carried over from it, and its
	// calibrated mapping fills in for renderer families the corpus
	// lacks. Serving-path implementations should take both from one
	// registry.View so they are consistent.
	Base func() (*registry.Snapshot, uint64)
	// Publish installs a refitted snapshot into the serving path;
	// baseGen is the generation the snapshot's carried-over models were
	// read at. Implementations backed by a live registry should use
	// registry.PublishIf(s, baseGen) so a concurrent reload cannot be
	// silently overwritten — on registry.ErrStale the calibrator
	// re-merges against the fresh base and retries. Required.
	Publish func(s *registry.Snapshot, baseGen uint64) error

	mu      sync.Mutex
	samples []core.Sample
	pending int    // samples accumulated since the last publish
	lastFit string // why the last refit attempt did not publish
}

// Observe ingests a batch of measured samples and refits when due. It
// reports the corpus size, whether a new snapshot was published, and —
// when not published — a human-readable reason (cadence not reached, or
// no group fittable yet). The error is non-nil only for real failures:
// a missing Publish hook or a publish that failed.
func (c *Calibrator) Observe(samples []core.Sample) (corpus int, published bool, reason string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.samples = append(c.samples, samples...)
	if c.MaxCorpus > 0 && len(c.samples) > c.MaxCorpus {
		drop := len(c.samples) - c.MaxCorpus
		c.samples = append(c.samples[:0], c.samples[drop:]...)
	}
	c.pending += len(samples)
	corpus = len(c.samples)
	every := c.RefitEvery
	if every < 1 {
		every = 1
	}
	if c.pending < every {
		return corpus, false, fmt.Sprintf("awaiting refit cadence (%d/%d new samples)", c.pending, every), nil
	}
	published, reason, err = c.refitLocked()
	return corpus, published, reason, err
}

// Refit forces a refit and publish attempt regardless of the cadence —
// the flush a finished study run uses to capture its trailing rows.
func (c *Calibrator) Refit() (published bool, reason string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.refitLocked()
}

// CorpusSize returns how many samples have been observed.
func (c *Calibrator) CorpusSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.samples)
}

func (c *Calibrator) refitLocked() (bool, string, error) {
	if c.Publish == nil {
		return false, "", fmt.Errorf("study: calibrator has no Publish hook")
	}
	if len(c.samples) == 0 {
		return false, "no samples observed yet", nil
	}
	set, _, err := core.FitAvailable(c.samples)
	if err != nil {
		// Not fatal: the corpus is just too thin. Keep accumulating.
		c.lastFit = err.Error()
		return false, c.lastFit, nil
	}
	fitted := registry.FromModelSet(set, core.CalibrateMapping(c.samples), c.Source)
	// Read-merge-publish can race a concurrent registry load; on a stale
	// publish, re-merge against the fresh base and try again.
	const maxRetries = 3
	for attempt := 0; ; attempt++ {
		snap := cloneSnapshot(fitted)
		var base *registry.Snapshot
		var baseGen uint64
		if c.Base != nil {
			base, baseGen = c.Base()
		}
		mergeSnapshot(snap, base, c.samples)
		if err := snap.Validate(); err != nil {
			c.lastFit = err.Error()
			return false, c.lastFit, nil
		}
		err := c.Publish(snap, baseGen)
		if err == nil {
			break
		}
		if errors.Is(err, registry.ErrStale) && attempt < maxRetries {
			continue
		}
		return false, "", fmt.Errorf("study: publishing refit snapshot: %w", err)
	}
	c.pending = 0
	c.lastFit = ""
	return true, "", nil
}

// cloneSnapshot copies the snapshot's top level and model slice so each
// merge attempt starts from the pristine fit (merge appends to Models).
func cloneSnapshot(s *registry.Snapshot) *registry.Snapshot {
	cp := *s
	cp.Models = append([]registry.ModelDoc(nil), s.Models...)
	return &cp
}

// mergeSnapshot carries models the fresh corpus could not (re)fit over
// from the base snapshot, so a continuous-calibration publish refines the
// served set rather than shrinking it. The mapping constants fall back to
// the base's when the corpus has no samples of the renderer family that
// calibrates them.
//
// Known limitation, inherent to the snapshot format's single shared
// Mapping: when the corpus does contain a renderer family, its constants
// are recalibrated from the corpus alone, and carried-over models of the
// same family on other architectures are then evaluated under the new
// constants even though no new data about them arrived. A camera setup
// consistent with the base study keeps the constants stable; a per-arch
// mapping would need a snapshot format revision.
func mergeSnapshot(fresh, base *registry.Snapshot, samples []core.Sample) {
	if base == nil {
		return
	}
	have := map[string]bool{}
	for _, d := range fresh.Models {
		have[core.Key(d.Arch, core.Renderer(d.Renderer))] = true
	}
	for _, d := range base.Models {
		if !have[core.Key(d.Arch, core.Renderer(d.Renderer))] {
			fresh.Models = append(fresh.Models, d)
		}
	}
	sort.Slice(fresh.Models, func(i, j int) bool {
		a, b := fresh.Models[i], fresh.Models[j]
		return core.Key(a.Arch, core.Renderer(a.Renderer)) < core.Key(b.Arch, core.Renderer(b.Renderer))
	})
	if fresh.Compositing == nil {
		fresh.Compositing = base.Compositing
	}
	var hasSurface, hasVolume bool
	for _, s := range samples {
		switch s.Renderer {
		case core.Volume:
			hasVolume = true
		case core.RayTrace, core.Raster:
			hasSurface = true
		}
	}
	if !hasSurface && base.Mapping.FillFraction > 0 {
		fresh.Mapping.FillFraction = base.Mapping.FillFraction
	}
	if !hasVolume && base.Mapping.SPRBase > 0 {
		fresh.Mapping.SPRBase = base.Mapping.SPRBase
	}
}
