package study

import (
	"insitu/internal/core"
	"insitu/internal/registry"
)

// FitSnapshot reduces measured rows to a publishable registry snapshot:
// it fits the per-architecture performance models and the compositing
// model, calibrates the configuration mapping from the same corpus, and
// packages everything with fit diagnostics. This is the bridge from the
// one-shot measurement pipeline to the online advisor service.
func FitSnapshot(rows []Row, source string) (*registry.Snapshot, error) {
	samples := Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		return nil, err
	}
	snap := registry.FromModelSet(set, core.CalibrateMapping(samples), source)
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// ExportModels fits and writes the snapshot to path atomically, returning
// the snapshot for inspection.
func ExportModels(rows []Row, source, path string) (*registry.Snapshot, error) {
	snap, err := FitSnapshot(rows, source)
	if err != nil {
		return nil, err
	}
	if err := snap.WriteFile(path); err != nil {
		return nil, err
	}
	return snap, nil
}
