// Package insitu reproduces "Performance Modeling of In Situ Rendering"
// (Larsen et al., SC 2016 / Larsen's 2016 dissertation) as a production
// Go library.
//
// The system answers the in situ feasibility question — is it possible to
// perform X1 rendering tasks while devoting no more than X2 time to them?
// — with statistical performance models based on algorithmic complexity.
// It contains:
//
//   - data-parallel renderers (ray tracing, rasterization, structured and
//     unstructured volume rendering) built from the primitives in
//     internal/dpp and executed on internal/device profiles. The
//     execution model is pooled and allocation-free in the steady state:
//     each device runs a persistent gang of parked workers (a launch is
//     a channel wake, not a goroutine spawn; Device.Close releases it),
//     each renderer owns a frame arena (ray SoA state, term buffers,
//     slab samples, framebuffer, and prebuilt kernel closures reused
//     across frames; returned images are valid until the next Render),
//     the morton pixel order is cached per image size, and compaction,
//     packet traversal, and compositing run through reusable per-worker
//     or per-rank scratch. Steady-state frames allocate nothing, serial
//     and parallel devices render byte-identical images, and
//     device.Stats accounts occupancy per wake — see the README's
//     performance section for sizing Workers/Grain and the warm-pool
//     measurement note;
//   - the in situ substrate: internal/conduit (hierarchical zero-copy data
//     description), internal/strawman (batch in situ pipeline),
//     internal/comm (simulated MPI), internal/composite (sort-last
//     radix-k / binary-swap / direct-send compositing), and three proxy
//     physics applications in internal/sim;
//   - the modeling methodology in internal/core and internal/stats:
//     complexity-derived linear models, OLS fitting, cross validation,
//     the configuration-to-inputs mapping, and the feasibility analyses;
//   - the scenario layer in internal/scenario — the single measurement
//     path shared by the study, the repro tables, and the in situ
//     pipeline: a Scene describes a renderable block (parsed simulation
//     data or prebuilt geometry, camera, device, scalar range) and
//     self-registered Backends turn scenes into frame renderers that
//     fill the model inputs of §5.3. Each backend declares its linear
//     model form (core.RendererSpec), its compositing operator, and its
//     data-shape constraints; registering one makes it sampled by the
//     study plan, fittable, snapshot-servable, and advisord-predictable
//     with no further changes (the tetrahedral volume-unstructured
//     backend is integrated exactly this way);
//   - the measurement harness in internal/study — a worker-pool runner
//     (study.RunContext: configurable parallelism, context cancellation,
//     deterministic plan-index ordering, streaming progress callbacks,
//     plan sharding for multi-process runs) plus the continuous
//     calibrator (study.Calibrator: measured samples stream in, the
//     models refit incrementally over the growing corpus, and each refit
//     publishes a new registry generation) — and comparator renderers in
//     internal/baseline;
//   - the online advisor subsystem: internal/registry (versioned JSON
//     snapshots of fitted model sets, a concurrent in-memory registry
//     with hot reload and in-place Publish, and an LRU prediction cache)
//     and internal/advisor (the batch-capable prediction engine answering
//     predict, images-in-budget, and max-triangles queries with
//     per-request metrics, ingesting posted observations for continuous
//     calibration, and sanitizing non-finite predictions at the API
//     boundary so responses always serialize);
//   - the render-serving subsystem in internal/serve — the layer that
//     acts on the predictions: model-gated admission (reject with the
//     predicted time, or degrade resolution/geometry/workload until the
//     prediction fits the deadline), an earliest-deadline-first bounded
//     scheduler over persistent cached scenario runners
//     (scenario.RunnerCache leases prepared scenes and device pools
//     across requests), an LRU frame cache with a zero-allocation hit
//     path, and calibration feedback: every rendered frame's measured
//     wall time flows into the calibrator, so serving traffic refits
//     the models that gate it. internal/lru is the one generic LRU
//     shared by the registry, the admission memo, and the frame cache;
//     internal/loadgen the shared load-generator core (QPS +
//     p50/p95/p99).
//
// Entry points: cmd/repro regenerates every table and figure of the
// paper's evaluation (with -parallel N measuring the study on N
// workers), its export experiment publishes the fitted models as a
// registry snapshot, and its calibrate experiment runs the live
// measure -> refit -> publish loop; cmd/advisord serves feasibility
// answers from such a snapshot over HTTP, accepts measured samples on
// POST /v1/observations for background refit and atomic hot reload (and
// has a load-generator mode for benchmarking); cmd/renderd serves
// deadline-gated PNG frames from the same models (GET/POST /v1/frame),
// degrading or refusing what does not fit and refitting from its own
// traffic; cmd/insitu runs a proxy simulation with in situ rendering;
// cmd/render renders a synthetic dataset through the scenario backend
// registry; the examples/ directory holds runnable walkthroughs,
// including examples/advisor for the measure -> export -> serve path,
// examples/calibrate for the continuous-calibration loop, and
// examples/renderd for the full predict -> act -> measure -> refit
// serving loop. bench_test.go in this directory carries one benchmark
// per reproduced table and figure.
package insitu
