package insitu

import (
	"fmt"
	"testing"

	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
)

// detDevices returns the serial reference device and a deliberately
// awkward parallel profile (many workers, tiny grain, vector packets) so
// scheduling nondeterminism would have every chance to show.
func detDevices() (*device.Device, *device.Device) {
	serial := device.Serial()
	par := device.New("det-parallel", 7)
	par.Grain = 16
	par.VectorWidth = 4
	return serial, par
}

func imagesEqual(t *testing.T, name string, a, b *framebuffer.Image) {
	t.Helper()
	if a.W != b.W || a.H != b.H {
		t.Fatalf("%s: image sizes differ: %dx%d vs %dx%d", name, a.W, a.H, b.W, b.H)
	}
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			t.Fatalf("%s: color channel %d differs: %v vs %v", name, i, a.Color[i], b.Color[i])
		}
	}
	for i := range a.Depth {
		if a.Depth[i] != b.Depth[i] {
			t.Fatalf("%s: depth %d differs: %v vs %v", name, i, a.Depth[i], b.Depth[i])
		}
	}
}

// TestParallelSerialImagesByteIdentical is the determinism contract of
// the pooled execution model: for every renderer, a parallel device with
// aggressive chunking produces exactly the image the serial device does —
// per-pixel kernels, chunk-ordered reductions, and order-independent
// atomic merges leave no schedule dependence.
func TestParallelSerialImagesByteIdentical(t *testing.T) {
	ds, err := synthdata.ByName("rm")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 14, 14, 14, synthdata.UnitBounds())
	cam := render.OrbitCamera(g.Bounds(), 30, 20, 1.0)
	serial, par := detDevices()

	t.Run("raytrace", func(t *testing.T) {
		m, err := g.Isosurface(device.Serial(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opts := raytrace.Options{
			Width: 72, Height: 56, Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
			Workload: raytrace.Workload3, Compaction: true, Supersample: true, AOSamples: 2,
		}
		imgS, _, err := raytrace.New(serial, m).Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := imgS.Clone()
		imgP, _, err := raytrace.New(par, m).Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "raytrace", ref, imgP)

		// Packetized traversal on the parallel device must also agree.
		opts.UsePackets = true
		imgPk, _, err := raytrace.New(par, m).Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "raytrace-packets", ref, imgPk)
	})

	t.Run("raster", func(t *testing.T) {
		m, err := g.Isosurface(device.Serial(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		opts := raster.Options{Width: 72, Height: 56, Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0)}
		imgS, _, err := raster.New(serial, m).Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := imgS.Clone()
		imgP, _, err := raster.New(par, m).Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "raster", ref, imgP)
	})

	t.Run("volume-structured", func(t *testing.T) {
		opts := volume.StructuredOptions{Width: 72, Height: 56, Camera: cam, Samples: 96}
		rs, err := volume.NewStructured(serial, g, ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		imgS, _, err := rs.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := imgS.Clone()
		rp, err := volume.NewStructured(par, g, ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		imgP, _, err := rp.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "volume-structured", ref, imgP)
	})

	t.Run("volume-unstructured", func(t *testing.T) {
		tm, err := g.Tetrahedralize(ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		for _, passes := range []int{1, 3} {
			opts := volume.UnstructuredOptions{
				Width: 72, Height: 56, Camera: cam, SamplesZ: 96, Passes: passes,
			}
			imgS, _, err := volume.NewUnstructured(serial, tm).Render(opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := imgS.Clone()
			imgP, _, err := volume.NewUnstructured(par, tm).Render(opts)
			if err != nil {
				t.Fatal(err)
			}
			imagesEqual(t, fmt.Sprintf("volume-unstructured/passes=%d", passes), ref, imgP)
		}
	})
}

// TestPooledReuseFramesIdentical is the stale-state check: rendering the
// same frame twice through one renderer must be byte-identical, proving
// the reused arenas (ray SoA, occlusion/shadow terms, slab buffers,
// framebuffers) are fully re-initialized between frames.
func TestPooledReuseFramesIdentical(t *testing.T) {
	ds, err := synthdata.ByName("nek")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 12, 12, 12, synthdata.UnitBounds())
	cam := render.OrbitCamera(g.Bounds(), 30, 20, 1.0)
	dev := device.New("reuse", 3)
	dev.Grain = 32

	t.Run("raytrace", func(t *testing.T) {
		m, err := g.Isosurface(device.Serial(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := raytrace.New(dev, m)
		opts := raytrace.Options{
			Width: 64, Height: 48, Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
			Workload: raytrace.Workload3, Compaction: true, Supersample: true, AOSamples: 2,
			Reflections: true,
		}
		img1, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := img1.Clone()
		// An intermediate frame with different options tries to poison
		// the arena before the original frame is repeated.
		mid := opts
		mid.Workload = raytrace.Workload2
		mid.Supersample = false
		mid.Reflections = false
		mid.Width, mid.Height = 48, 40
		if _, _, err := r.Render(mid); err != nil {
			t.Fatal(err)
		}
		img2, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "raytrace-reuse", ref, img2)
	})

	t.Run("volume-structured", func(t *testing.T) {
		r, err := volume.NewStructured(dev, g, ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		opts := volume.StructuredOptions{Width: 64, Height: 48, Camera: cam, Samples: 80}
		img1, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := img1.Clone()
		if _, _, err := r.Render(volume.StructuredOptions{Width: 40, Height: 32, Camera: cam, Samples: 40}); err != nil {
			t.Fatal(err)
		}
		img2, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "volume-structured-reuse", ref, img2)
	})

	t.Run("volume-unstructured", func(t *testing.T) {
		tm, err := g.Tetrahedralize(ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		r := volume.NewUnstructured(dev, tm)
		opts := volume.UnstructuredOptions{Width: 64, Height: 48, Camera: cam, SamplesZ: 80, Passes: 2}
		img1, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := img1.Clone()
		if _, _, err := r.Render(volume.UnstructuredOptions{Width: 40, Height: 32, Camera: cam, SamplesZ: 48}); err != nil {
			t.Fatal(err)
		}
		img2, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "volume-unstructured-reuse", ref, img2)
	})

	t.Run("raster", func(t *testing.T) {
		m, err := g.Isosurface(device.Serial(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r := raster.New(dev, m)
		opts := raster.Options{Width: 64, Height: 48, Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0)}
		img1, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		ref := img1.Clone()
		if _, _, err := r.Render(raster.Options{Width: 40, Height: 32, Camera: opts.Camera}); err != nil {
			t.Fatal(err)
		}
		img2, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imagesEqual(t, "raster-reuse", ref, img2)
	})
}
