module insitu

go 1.24
