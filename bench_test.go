// Benchmarks: one per reproduced table and figure (sized for iteration;
// cmd/repro prints the full tables), plus ablation benches for the design
// choices DESIGN.md calls out (BVH builders, compositing algorithms,
// stream compaction, packet traversal).
package insitu

import (
	"fmt"
	"testing"

	"insitu/internal/baseline"
	"insitu/internal/bvh"
	"insitu/internal/comm"
	"insitu/internal/composite"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
	"insitu/internal/sim"
	"insitu/internal/strawman"
	"insitu/internal/study"

	"insitu/internal/conduit"
)

const (
	benchGrid  = 20
	benchImage = 160
)

func benchSurface(b *testing.B) *mesh.TriangleMesh {
	b.Helper()
	ds, err := synthdata.ByName("rm")
	if err != nil {
		b.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, benchGrid, benchGrid, benchGrid, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchTets(b *testing.B) *mesh.TetMesh {
	b.Helper()
	ds, err := synthdata.ByName("nek")
	if err != nil {
		b.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 14, 14, 14, synthdata.UnitBounds())
	tm, err := g.Tetrahedralize(ds.FieldName)
	if err != nil {
		b.Fatal(err)
	}
	return tm
}

// BenchmarkTable1RayTraceShaded is Table 1's workload: WORKLOAD2 frames.
func BenchmarkTable1RayTraceShaded(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	rdr := raytrace.New(device.CPU(), m)
	opts := raytrace.Options{
		Width: benchImage, Height: benchImage,
		Camera:   render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
		Workload: raytrace.Workload2,
	}
	// Warm frame: pays the one-time arena allocations so the timed loop
	// measures the zero-allocation steady state.
	if _, _, err := rdr.Render(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rdr.Render(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RayTraceFull is Table 2's workload: WORKLOAD3 frames.
func BenchmarkTable2RayTraceFull(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	rdr := raytrace.New(device.CPU(), m)
	opts := raytrace.Options{
		Width: benchImage, Height: benchImage,
		Camera:   render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
		Workload: raytrace.Workload3, Compaction: true, Supersample: true,
	}
	// Warm frame: steady-state allocations only in the timed loop.
	if _, _, err := rdr.Render(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rdr.Render(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3VsQueueRT measures the OptiX-analogue side of Table 3.
func BenchmarkTable3VsQueueRT(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	q := baseline.NewQueueRT(m, device.CPU().Workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Trace(cam, benchImage, benchImage)
	}
}

// BenchmarkTable4VsFastRT measures the Embree-analogue side of Table 4.
func BenchmarkTable4VsFastRT(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	f := baseline.NewFastRT(m, device.CPU().Workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Trace(cam, benchImage, benchImage)
	}
}

// BenchmarkTable5Backends compares scalar vs packet traversal (Table 5).
func BenchmarkTable5Backends(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	dev, err := device.Profile("mic")
	if err != nil {
		b.Fatal(err)
	}
	rdr := raytrace.New(dev, m)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	for _, packets := range []bool{false, true} {
		name := "scalar"
		if packets {
			name = "packet"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			opts := raytrace.Options{
				Width: benchImage, Height: benchImage, Camera: cam,
				Workload: raytrace.Workload1, UsePackets: packets,
			}
			if _, _, err := rdr.Render(opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := rdr.Render(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4VolumePhases is the unstructured VR multi-pass workload
// behind Figures 4 and 5.
func BenchmarkFig4VolumePhases(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	for _, passes := range []int{1, 4} {
		b.Run(fmt.Sprintf("passes%d", passes), func(b *testing.B) {
			b.ReportAllocs()
			rdr := volume.NewUnstructured(device.CPU(), tm)
			for i := 0; i < b.N; i++ {
				if _, _, err := rdr.Render(volume.UnstructuredOptions{
					Width: 96, Height: 96, Camera: cam, SamplesZ: 96, Passes: passes,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6VsHAVS measures the HAVS comparator (Figure 6).
func BenchmarkFig6VsHAVS(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	hv := &baseline.HAVS{Mesh: tm, Dev: device.CPU()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hv.Render(cam, 96, 96, 96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7VsBunyk measures the connectivity ray-caster (Figure 7).
func BenchmarkFig7VsBunyk(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	bk := baseline.NewBunyk(tm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bk.Render(cam, 64, 64, 96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7PhaseIPC is the instrumented VR render of Tables 6-7.
func BenchmarkTable7PhaseIPC(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.8)
	dev, err := device.Profile("gpu")
	if err != nil {
		b.Fatal(err)
	}
	dev.Stats = &device.Stats{}
	rdr := volume.NewUnstructured(dev, tm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rdr.Render(volume.UnstructuredOptions{
			Width: 96, Height: 96, Camera: cam, SamplesZ: 96, Passes: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8Scaling is the strong-scaling workload of Table 8.
func BenchmarkTable8Scaling(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			rdr := volume.NewUnstructured(device.New("w", workers), tm)
			for i := 0; i < b.N; i++ {
				if _, _, err := rdr.Render(volume.UnstructuredOptions{
					Width: 96, Height: 96, Camera: cam, SamplesZ: 96,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable9VsVisIt measures the VisIt-analogue (Table 9).
func BenchmarkTable9VsVisIt(b *testing.B) {
	b.ReportAllocs()
	tm := benchTets(b)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	vv := &baseline.VisItVR{Mesh: tm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vv.Render(cam, 64, 64, 96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable11Burden is one in situ render cycle (Table 11's vis
// column): publish + execute through Strawman.
func BenchmarkTable11Burden(b *testing.B) {
	b.ReportAllocs()
	s, err := sim.New("kripke", 16, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	s.Step()
	data := conduit.NewNode()
	s.Publish(data)
	sman, err := strawman.Open(nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sman.Close()
	if err := sman.Publish(data); err != nil {
		b.Fatal(err)
	}
	actions := conduit.NewNode()
	add := actions.Append()
	add.Set("action", "add_plot")
	add.Set("var", "phi")
	add.Set("renderer", "raytracer")
	save := actions.Append()
	save.Set("action", "save_image")
	save.Set("fileName", b.TempDir()+"/burden")
	save.Set("width", benchImage)
	save.Set("height", benchImage)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sman.Execute(actions); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Compositing is the binary-swap exchange behind Figure 12
// and the compositing model (Table 14).
func BenchmarkFig12Compositing(b *testing.B) {
	b.ReportAllocs()
	const tasks = 4
	imgs := make([]*framebuffer.Image, tasks)
	for r := range imgs {
		imgs[r] = framebuffer.NewImage(benchImage, benchImage)
		for p := 0; p < benchImage*benchImage; p += 2 {
			imgs[r].Set(p%benchImage, p/benchImage, 0.5, 0.5, 0.5, 1, float32(r+1))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := comm.NewWorld(tasks)
		err := w.Run(func(c *comm.Comm) error {
			_, _, err := composite.BinarySwap().Composite(c, imgs[c.Rank()], composite.DepthOp, nil)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchCorpus builds a small measured corpus once for the model benches.
var benchCorpusSamples []core.Sample

func corpusForBench(b *testing.B) []core.Sample {
	b.Helper()
	if benchCorpusSamples != nil {
		return benchCorpusSamples
	}
	var plan []study.Config
	for _, n := range []int{10, 14, 18} {
		for _, img := range []int{64, 112} {
			for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 2, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}
	rows, err := study.Run(plan, nil)
	if err != nil {
		b.Fatal(err)
	}
	benchCorpusSamples = study.Samples(rows)
	return benchCorpusSamples
}

// BenchmarkTable12ModelFit times fitting all models (Tables 12 and 17).
func BenchmarkTable12ModelFit(b *testing.B) {
	b.ReportAllocs()
	samples := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitModels(samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable13CrossValidation times the 3-fold CV of Table 13/Fig 11.
func BenchmarkTable13CrossValidation(b *testing.B) {
	b.ReportAllocs()
	samples := corpusForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CrossValidate(samples, "cpu", core.RayTrace, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable15HeldOut times one held-out prediction (Table 15).
func BenchmarkTable15HeldOut(b *testing.B) {
	b.ReportAllocs()
	samples := corpusForBench(b)
	set, err := core.FitModels(samples)
	if err != nil {
		b.Fatal(err)
	}
	mp := core.CalibrateMapping(samples)
	in := mp.Map(core.Config{N: 256, Tasks: 1024, Width: 2048, Height: 2048, Renderer: core.RayTrace})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = set.Models[core.Key("cpu", core.RayTrace)].Predict(in)
	}
}

// BenchmarkFig14Budget times the images-per-budget sweep (Figure 14).
func BenchmarkFig14Budget(b *testing.B) {
	b.ReportAllocs()
	samples := corpusForBench(b)
	set, err := core.FitModels(samples)
	if err != nil {
		b.Fatal(err)
	}
	mp := core.CalibrateMapping(samples)
	sizes := []int{1024, 1536, 2048, 2560, 3072, 4096}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.ImagesInBudget("cpu", core.RayTrace, mp, 200, 32, 60, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15RTvsRast times the comparison grid (Figure 15).
func BenchmarkFig15RTvsRast(b *testing.B) {
	b.ReportAllocs()
	samples := corpusForBench(b)
	set, err := core.FitModels(samples)
	if err != nil {
		b.Fatal(err)
	}
	mp := core.CalibrateMapping(samples)
	imgs := []int{384, 1024, 2048, 4096}
	datas := []int{100, 200, 300, 400, 500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.CompareRTvsRaster("cpu", mp, 32, 100, imgs, datas); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for DESIGN.md's called-out choices ---------------

// BenchmarkAblationBVHBuilders compares build cost of the three builders.
func BenchmarkAblationBVHBuilders(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	for _, builder := range []bvh.Builder{bvh.LBVH, bvh.Median, bvh.SAH} {
		b.Run(builder.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bvh.Build(device.CPU(), m, builder)
			}
		})
	}
}

// BenchmarkAblationBVHTraversal compares trace speed over tree quality.
func BenchmarkAblationBVHTraversal(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	for _, builder := range []bvh.Builder{bvh.LBVH, bvh.SAH} {
		rdr := raytrace.NewWithBuilder(device.CPU(), m, builder)
		b.Run(builder.String(), func(b *testing.B) {
			b.ReportAllocs()
			opts := raytrace.Options{
				Width: benchImage, Height: benchImage, Camera: cam,
				Workload: raytrace.Workload1,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := rdr.Render(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompositors compares the exchange algorithms.
func BenchmarkAblationCompositors(b *testing.B) {
	b.ReportAllocs()
	const tasks = 4
	imgs := make([]*framebuffer.Image, tasks)
	for r := range imgs {
		imgs[r] = framebuffer.NewImage(benchImage, benchImage)
		for p := r; p < benchImage*benchImage; p += 3 {
			imgs[r].Set(p%benchImage, p/benchImage, 1, 0, 0, 1, float32(r+1))
		}
	}
	for name, k := range map[string]*composite.Compositor{
		"binaryswap": composite.BinarySwap(),
		"directsend": composite.DirectSend(tasks),
		"radix4":     composite.RadixK(4),
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := comm.NewWorld(tasks)
				err := w.Run(func(c *comm.Comm) error {
					_, _, err := k.Composite(c, imgs[c.Rank()], composite.DepthOp, nil)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompaction measures stream compaction on/off for the
// full ray tracing workload.
func BenchmarkAblationCompaction(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	rdr := raytrace.New(device.CPU(), m)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 0.6) // zoomed out: many dead rays
	for _, compaction := range []bool{false, true} {
		name := "off"
		if compaction {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			opts := raytrace.Options{
				Width: benchImage, Height: benchImage, Camera: cam,
				Workload: raytrace.Workload3, Compaction: compaction,
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := rdr.Render(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRasterizer measures the object-order path (Figure 15's
// other contender) on the same scene as Table 1.
func BenchmarkAblationRasterizer(b *testing.B) {
	b.ReportAllocs()
	m := benchSurface(b)
	rdr := raster.New(device.CPU(), m)
	opts := raster.Options{
		Width: benchImage, Height: benchImage,
		Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
	}
	// Warm frame: steady-state allocations only in the timed loop.
	if _, _, err := rdr.Render(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rdr.Render(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStructuredVolume measures the Chapter V volume renderer.
func BenchmarkStructuredVolume(b *testing.B) {
	b.ReportAllocs()
	ds, err := synthdata.ByName("nek")
	if err != nil {
		b.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, benchGrid, benchGrid, benchGrid, synthdata.UnitBounds())
	vr, err := volume.NewStructured(device.CPU(), g, ds.FieldName)
	if err != nil {
		b.Fatal(err)
	}
	opts := volume.StructuredOptions{
		Width: benchImage, Height: benchImage,
		Camera: render.OrbitCamera(g.Bounds(), 30, 20, 1.0), Samples: 160,
	}
	// Warm frame: steady-state allocations only in the timed loop.
	if _, _, err := vr.Render(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := vr.Render(opts); err != nil {
			b.Fatal(err)
		}
	}
}
