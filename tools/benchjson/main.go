// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON document on stdout: one record per benchmark with
// ns/op, B/op, and allocs/op, plus the raw benchmark lines so
// benchstat-compatible input can be reproduced verbatim
// (`jq -r '.raw[]' BENCH_4.json | benchstat /dev/stdin`). The Makefile's
// bench-json target uses it to emit the repo's committed benchmark
// baselines (BENCH_<pr>.json), giving later PRs a trajectory to compare
// against.
//
// Each -baseline flag names a committed BENCH_<pr>.json; any benchmark
// that was 0 allocs/op in some baseline and is >0 now is an allocation
// regression: the JSON is still written, but the exit status is 1 so
// `make bench-json` fails loudly. The zero-allocation steady state is a
// load-bearing property (PR 4's arenas, PR 5's cache-hit path), and this
// guard is its cheap regression fence alongside the insitulint noalloc
// analyzer's static one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the emitted JSON document.
type Doc struct {
	GeneratedBy string   `json:"generated_by"`
	Benchmarks  []Record `json:"benchmarks"`
	Raw         []string `json:"raw"`
}

// baselineFlags collects repeated -baseline file arguments.
type baselineFlags []string

func (b *baselineFlags) String() string { return strings.Join(*b, ",") }
func (b *baselineFlags) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func main() {
	var baselines baselineFlags
	flag.Var(&baselines, "baseline",
		"committed BENCH_<pr>.json to guard against allocation regressions (repeatable)")
	flag.Parse()

	doc := Doc{GeneratedBy: "make bench-json", Benchmarks: []Record{}, Raw: []string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			// Keep headers (goos/goarch/pkg/cpu) in raw for benchstat.
			if strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
				strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:") {
				doc.Raw = append(doc.Raw, line)
			}
			continue
		}
		doc.Raw = append(doc.Raw, line)
		rec := Record{Name: fields[0], BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if rec.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				rec.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				rec.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				rec.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if regressed := checkAllocRegressions(doc.Benchmarks, baselines); regressed {
		os.Exit(1)
	}
}

// checkAllocRegressions compares the new records against the committed
// baselines: a benchmark that achieved 0 allocs/op in any baseline must
// stay at 0. Names are compared with the -GOMAXPROCS suffix stripped so
// baselines recorded on differently-sized machines still match.
func checkAllocRegressions(recs []Record, baselines []string) bool {
	zero := map[string]string{} // normalized name -> baseline file
	for _, file := range baselines {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping baseline %s: %v\n", file, err)
			continue
		}
		var base Doc
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping baseline %s: %v\n", file, err)
			continue
		}
		for _, b := range base.Benchmarks {
			if b.AllocsPerOp == 0 {
				zero[trimProcSuffix(b.Name)] = file
			}
		}
	}
	regressed := false
	for _, r := range recs {
		if r.AllocsPerOp <= 0 {
			continue // zero, or -benchmem was off (-1)
		}
		if file, ok := zero[trimProcSuffix(r.Name)]; ok {
			fmt.Fprintf(os.Stderr,
				"benchjson: ALLOCATION REGRESSION: %s was 0 allocs/op in %s, now %d allocs/op\n",
				r.Name, file, r.AllocsPerOp)
			regressed = true
		}
	}
	return regressed
}

// trimProcSuffix drops a trailing -N GOMAXPROCS marker from a benchmark
// name: BenchmarkRenderdThroughput-8 -> BenchmarkRenderdThroughput.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}
