// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a JSON document on stdout: one record per benchmark with
// ns/op, B/op, and allocs/op, plus the raw benchmark lines so
// benchstat-compatible input can be reproduced verbatim
// (`jq -r '.raw[]' BENCH_4.json | benchstat /dev/stdin`). The Makefile's
// bench-json target uses it to emit the repo's committed benchmark
// baselines (BENCH_<pr>.json), giving later PRs a trajectory to compare
// against.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Doc is the emitted JSON document.
type Doc struct {
	GeneratedBy string   `json:"generated_by"`
	Benchmarks  []Record `json:"benchmarks"`
	Raw         []string `json:"raw"`
}

func main() {
	doc := Doc{GeneratedBy: "make bench-json", Benchmarks: []Record{}, Raw: []string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			// Keep headers (goos/goarch/pkg/cpu) in raw for benchstat.
			if strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
				strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:") {
				doc.Raw = append(doc.Raw, line)
			}
			continue
		}
		doc.Raw = append(doc.Raw, line)
		rec := Record{Name: fields[0], BytesPerOp: -1, AllocsPerOp: -1}
		var err error
		if rec.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				rec.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				rec.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				rec.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
