// Command insitulint runs the repo's static-analysis suite (noalloc,
// collective, leaselife, ctxcomm) in two modes:
//
//	insitulint ./...                          standalone, loads the module
//	go vet -vettool=$(pwd)/bin/insitulint ./...   unitchecker under cmd/go
//
// Under go vet, cmd/go probes the tool with -V=full and -flags, then
// invokes it once per compilation unit with a *.cfg JSON file; facts
// (//insitu: annotations) flow between units through vetx files.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"insitu/internal/analysis"
	"insitu/internal/analysis/collective"
	"insitu/internal/analysis/ctxcomm"
	"insitu/internal/analysis/driver"
	"insitu/internal/analysis/leaselife"
	"insitu/internal/analysis/noalloc"
)

var analyzers = []*analysis.Analyzer{
	noalloc.Analyzer,
	collective.Analyzer,
	leaselife.Analyzer,
	ctxcomm.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go identity probe: the first field must be the executable's
	// base name, the second "version"; the buildID makes vet's action
	// cache key on the tool binary.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("%s version devel buildID=%s\n", progName(), buildID())
		return
	}
	// cmd/go flags probe: we define none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unitchecker invocation: a single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(driver.RunUnit(analyzers, args[0], os.Stderr))
	}

	// Standalone: treat args as package patterns.
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(driver.Standalone(analyzers, args, os.Stderr))
}

func progName() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// buildID hashes the running executable, matching what unitchecker-based
// vet tools report so cmd/go can cache per-binary.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
