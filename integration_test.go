// End-to-end integration tests: the golden path from measurement through
// model fitting to feasibility answers, plus cross-cutting checks that the
// paper's methodology assumptions hold on this implementation.
package insitu

import (
	"math"
	"testing"

	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
	"insitu/internal/stats"
	"insitu/internal/study"
)

// TestGoldenPath is the complete workflow of Chapter V: measure a small
// corpus, fit per-architecture models, calibrate the mapping, and answer a
// feasibility question.
func TestGoldenPath(t *testing.T) {
	if testing.Short() {
		t.Skip("golden path study is slow")
	}
	var plan []study.Config
	for _, n := range []int{10, 14, 18, 22} {
		for _, img := range []int{64, 112, 160} {
			for _, r := range []core.Renderer{core.RayTrace, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}
	rows, err := study.Run(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}

	// The ray tracing model must explain most of the variance: this is the
	// paper's central claim (Table 12 reports R^2 >= 0.94 at full scale;
	// our floor allows for the sandbox's two noisy cores).
	rt := set.Models[core.Key("cpu", core.RayTrace)]
	if rt.Fit.R2 < 0.5 {
		t.Errorf("ray tracing R2 = %v; model not predictive", rt.Fit.R2)
	}

	// Correlation screen (the paper's methodology step): render time must
	// correlate positively with the model's leading term.
	var term, times []float64
	for _, s := range samples {
		if s.Renderer != core.RayTrace {
			continue
		}
		term = append(term, s.In.AP*math.Log2(s.In.O))
		times = append(times, s.RenderTime)
	}
	if r := stats.Pearson(term, times); r < 0.5 {
		t.Errorf("AP*log2(O) correlation with render time = %v", r)
	}

	// Feasibility: predictions must be positive and monotone in image size.
	mp := core.CalibrateMapping(samples)
	pts, err := set.ImagesInBudget("cpu", core.RayTrace, mp, 32, 1, 60,
		[]int{256, 512, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Images <= 0 {
		t.Error("no images fit a 60s budget at 256^2; predictions degenerate")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PerImage < pts[i-1].PerImage {
			t.Errorf("per-image time decreased with size: %+v then %+v", pts[i-1], pts[i])
		}
	}
}

// TestRenderTimeMonotoneInResolution checks the raw behaviour the models
// rely on: more pixels cannot make rendering much faster.
func TestRenderTimeMonotoneInResolution(t *testing.T) {
	ds, err := synthdata.ByName("rm")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 16, 16, 16, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rdr := raytrace.New(device.Serial(), m)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	timeAt := func(size int) float64 {
		opts := raytrace.Options{Width: size, Height: size, Camera: cam, Workload: raytrace.Workload2}
		if _, _, err := rdr.Render(opts); err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			_, st, err := rdr.Render(opts)
			if err != nil {
				t.Fatal(err)
			}
			if s := st.Phases.Total().Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	small := timeAt(64)
	large := timeAt(256)
	if large < small {
		t.Errorf("16x pixels rendered faster: %v vs %v", large, small)
	}
}

// TestDeviceProfilesAllRender ensures every named profile can execute the
// full pipeline (the portability premise).
func TestDeviceProfilesAllRender(t *testing.T) {
	ds, err := synthdata.ByName("lt")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 12, 12, 12, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	var ref []float32
	for _, name := range device.ProfileNames() {
		dev, err := device.Profile(name)
		if err != nil {
			t.Fatal(err)
		}
		img, _, err := raytrace.New(dev, m).Render(raytrace.Options{
			Width: 48, Height: 48, Camera: cam, Workload: raytrace.Workload2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if img.ActivePixels() == 0 {
			t.Errorf("%s: empty image", name)
		}
		if ref == nil {
			ref = img.Color
			continue
		}
		for i := range ref {
			if ref[i] != img.Color[i] {
				t.Fatalf("%s: image differs from first profile at channel %d — portability broken", name, i)
			}
		}
	}
}
