// Multinode demonstrates the distributed renderd topology in one
// process: a router rank fronts a fleet of worker ranks, shards each
// frame's data across them (weak scaling, one N^3 block per rank),
// renders the partials in parallel, and composites sort-last with
// binary swap — the pipeline the paper's multi-node model covers, and
// exactly what `renderd -cluster N` serves over HTTP.
//
// The walkthrough:
//
//  1. Load a model registry (synthetic here; `repro export` in real use)
//     so the fleet has the fitted render and compositing (Tc) models.
//  2. cluster.New(reg, workers) boots the fleet: worker rank loops over
//     an in-process MPI-like world, the router on rank 0.
//  3. Each Render call places the job's shards on distinct ranks by
//     rendezvous hashing, replicates any new model snapshot first, then
//     dispatches; the shard group renders and composites collectively
//     and the router gets one finished frame.
//  4. A model publish on the router is visible on every worker by the
//     next frame — the closed calibration loop's distribution half.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"insitu/internal/cluster"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/scenario"
)

func main() {
	workers := flag.Int("workers", 4, "worker ranks in the fleet")
	shards := flag.Int("shards", 3, "ranks each frame is sharded across")
	size := flag.Int("size", 400, "image size")
	n := flag.Int("n", 16, "grid points per axis per shard")
	backend := flag.String("backend", "volume", "raytracer, rasterizer, volume, or volume-unstructured")
	simName := flag.String("sim", "kripke", "proxy simulation (cloverleaf, kripke, lulesh)")
	out := flag.String("out", "multinode.png", "output image path")
	flag.Parse()

	// 1. Models. A fleet admits and composites by the fitted models, so
	// it is built over a registry; here a small synthetic snapshot stands
	// in for one exported by the measurement study.
	reg := registry.New(64)
	if err := reg.Load(demoSnapshot()); err != nil {
		log.Fatal(err)
	}

	// 2. Boot the fleet: *workers* serial rank loops plus the router.
	fleet, err := cluster.New(reg, *workers)
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Close()

	// 3. Render one sharded frame. The router places the shards,
	// replicates the registry snapshot to stale workers, dispatches, and
	// returns the binary-swap composite of the partial renders.
	res, err := fleet.Render(context.Background(), cluster.Job{
		Backend: *backend, Sim: *simName, Arch: "serial",
		N: *n, Width: *size, Height: *size,
		Shards: *shards, Azimuth: 30, Zoom: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d ranks rendered %q/%s and composited %dx%d\n",
		*shards, *workers, *backend, *simName, res.Image.W, res.Image.H)
	fmt.Printf("  max rank render: %.4fs  composite (Tc): %.4fs  per rank: %v\n",
		res.RenderSeconds, res.CompositeSeconds, fmtSeconds(res.RankRenderSeconds))

	// 4. Replication: after the frame, every worker's registry replica is
	// at the router's generation — a publish here reaches the fleet with
	// the next dispatch.
	st := fleet.Stats()
	fmt.Printf("  fleet: %d frames, %d snapshots pushed, %d bytes over the wire, worker generations %v\n",
		st.FramesDispatched, st.SnapshotsPushed, st.BytesSent, st.WorkerGenerations)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.Image.EncodePNG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wrote %s\n", *out)
}

func fmtSeconds(secs []float64) []string {
	out := make([]string, len(secs))
	for i, s := range secs {
		out[i] = fmt.Sprintf("%.4fs", s)
	}
	return out
}

// demoSnapshot hand-builds a registry snapshot with plausible positive
// coefficients for every backend plus the compositing model.
func demoSnapshot() *registry.Snapshot {
	fit := func(coef ...float64) registry.FitDoc {
		return registry.FitDoc{Coef: coef, R2: 0.99, N: 16, P: len(coef)}
	}
	build := fit(1e-8, 1e-5)
	return &registry.Snapshot{
		Version: registry.SnapshotVersion, Source: "multinode-example", CreatedUnix: 1,
		Mapping: registry.MappingDoc{FillFraction: 0.55, SPRBase: 373},
		Models: []registry.ModelDoc{
			{Arch: "serial", Renderer: string(core.RayTrace), Fit: fit(1e-7, 5e-8, 1e-4), BuildFit: &build},
			{Arch: "serial", Renderer: string(core.Raster), Fit: fit(1e-9, 1e-8, 1e-4)},
			{Arch: "serial", Renderer: string(core.Volume), Fit: fit(1e-8, 1e-9, 1e-4)},
			{Arch: "serial", Renderer: string(scenario.VolumeUnstructured), Fit: fit(1e-9, 1e-9, 1e-4)},
		},
		Compositing: &registry.ModelDoc{
			Arch: "all", Renderer: string(core.Compositing), Fit: fit(1e-9, 1e-9, 1e-4),
		},
	}
}
