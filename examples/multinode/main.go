// Multinode demonstrates distributed in situ rendering: eight simulated
// MPI tasks each run a block of the transport proxy, render their sub-
// domain, and composite with binary swap — the sort-last pipeline the
// paper's multi-node model covers.
package main

import (
	"flag"
	"fmt"
	"log"

	"insitu/internal/comm"
	"insitu/internal/conduit"
	"insitu/internal/framebuffer"
	"insitu/internal/sim"
	"insitu/internal/strawman"
)

func main() {
	tasks := flag.Int("tasks", 8, "simulated MPI tasks")
	size := flag.Int("size", 400, "image size")
	n := flag.Int("n", 20, "grid points per axis per task")
	renderer := flag.String("renderer", "volume", "raytracer, rasterizer, or volume")
	flag.Parse()

	world := comm.NewWorld(*tasks)
	images, err := comm.RunCollect(world, func(c *comm.Comm) (*framebuffer.Image, error) {
		s, err := sim.New("kripke", *n, *tasks, c.Rank())
		if err != nil {
			return nil, err
		}
		for i := 0; i < 3; i++ {
			s.Step()
		}
		opts := conduit.NewNode()
		opts.Set("device", "cpu")
		opts.SetExternal("mpi_comm", c)
		sman, err := strawman.Open(opts)
		if err != nil {
			return nil, err
		}
		defer sman.Close()

		data := conduit.NewNode()
		s.Publish(data)
		if err := sman.Publish(data); err != nil {
			return nil, err
		}
		actions := conduit.NewNode()
		add := actions.Append()
		add.Set("action", "add_plot")
		add.Set("var", s.PrimaryField())
		add.Set("renderer", *renderer)
		save := actions.Append()
		save.Set("action", "save_image")
		save.Set("fileName", "multinode")
		save.Set("width", *size)
		save.Set("height", *size)
		if err := sman.Execute(actions); err != nil {
			return nil, err
		}
		return sman.LastImages["multinode"], nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tasks rendered and composited; bytes over the wire: %d\n",
		*tasks, world.BytesSent())
	if images[0] != nil {
		fmt.Printf("composited image: %d active pixels -> multinode.png\n",
			images[0].ActivePixels())
	}
}
