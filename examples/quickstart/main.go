// Quickstart: build a synthetic dataset, extract an isosurface, ray trace
// it, and write a PNG — the library's shortest end-to-end path.
package main

import (
	"fmt"
	"log"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
)

func main() {
	// A Richtmyer-Meshkov-style mixing layer sampled on a 48^3 grid.
	ds, err := synthdata.ByName("rm")
	if err != nil {
		log.Fatal(err)
	}
	grid := synthdata.Grid(ds.FieldName, ds.Func, 48, 48, 48, synthdata.UnitBounds())

	// Extract the density isosurface with marching tetrahedra.
	dev := device.CPU()
	iso, err := grid.Isosurface(dev, ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isosurface: %d triangles\n", iso.NumTriangles())

	// Ray trace with full lighting: ambient occlusion, shadows, and
	// 4x supersampling.
	cam := render.OrbitCamera(iso.Bounds(), 30, 20, 1.4)
	rdr := raytrace.New(dev, iso)
	img, stats, err := rdr.Render(raytrace.Options{
		Width: 640, Height: 480,
		Camera:     cam,
		Workload:   raytrace.Workload3,
		Compaction: true, Supersample: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("render: %s (BVH build %s, %d rays)\n",
		stats.Phases.Total().Round(1e6), stats.BVHBuild.Round(1e6), stats.TotalRays)

	if err := img.SavePNG("quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")
}
