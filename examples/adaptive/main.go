// Adaptive demonstrates the paper's Chapter VI direction: an in situ
// layer that measures as it renders, refines its performance models on
// line, and decides — under a declared time budget — which renderer and
// image size to use, then verifies the decision against reality.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"insitu/internal/adaptive"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/study"
)

func main() {
	budget := flag.Float64("budget", 0.5, "visualization budget per invocation (seconds)")
	images := flag.Int("images", 8, "images per invocation")
	flag.Parse()

	// 1. Seed the online fitter with a quick calibration pass.
	var plan []study.Config
	for _, n := range []int{12, 16, 20} {
		for _, img := range []int{96, 160, 224} {
			for _, r := range []core.Renderer{core.RayTrace, core.Raster} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}
	fmt.Printf("calibrating on %d configurations...\n", len(plan))
	rows, err := study.Run(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	fitter := adaptive.NewOnlineFitter(study.Samples(rows))
	set, err := fitter.Models()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d samples covering %v\n", fitter.Len(), fitter.Keys())

	// 2. Ask the advisor for a configuration that fits the budget.
	advisor := adaptive.NewAdvisor(set, fitter.Mapping(), "cpu")
	const n = 24
	decision, err := advisor.Decide(n, 1, adaptive.Constraints{
		MaxVisSeconds: *budget,
		Images:        *images,
		MinImageSize:  128,
		MaxImageSize:  2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decision: %s at %d^2 (predicted %.3fs for %d images, feasible=%v)\n",
		decision.Renderer, decision.ImageSize, decision.PredictedSeconds, *images, decision.Feasible)

	// 3. Execute the decision and compare prediction with reality.
	ds, err := synthdata.ByName("rm")
	if err != nil {
		log.Fatal(err)
	}
	grid := synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
	iso, err := grid.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cam := render.OrbitCamera(iso.Bounds(), 30, 20, 1.2)
	start := time.Now()
	switch decision.Renderer {
	case core.RayTrace:
		rdr := raytrace.New(device.CPU(), iso)
		for i := 0; i < *images; i++ {
			if _, _, err := rdr.Render(raytrace.Options{
				Width: decision.ImageSize, Height: decision.ImageSize,
				Camera: cam, Workload: raytrace.Workload2,
			}); err != nil {
				log.Fatal(err)
			}
		}
	case core.Raster:
		rdr := raster.New(device.CPU(), iso)
		for i := 0; i < *images; i++ {
			if _, _, err := rdr.Render(raster.Options{
				Width: decision.ImageSize, Height: decision.ImageSize, Camera: cam,
			}); err != nil {
				log.Fatal(err)
			}
		}
	}
	actual := time.Since(start).Seconds()
	fmt.Printf("actual: %.3fs (budget %.3fs) — prediction error %+.0f%%\n",
		actual, *budget, 100*(decision.PredictedSeconds-actual)/actual)
}
