// Session walks renderd's interactive streaming sessions end to end in
// one process: measure and fit models on this machine, stand up the
// render server, open a persistent session, and orbit the camera the
// way an interactive client would. The session tracks the camera path,
// extrapolates the next poses, and speculatively renders them into the
// frame cache during the client's think time — so after a warm-up lap
// the time-to-photon collapses from a full render to a cache hit. The
// example prints each frame's latency and whether it was served from a
// speculative render, then the session and prefetch counters.
package main

import (
	"fmt"
	"log"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/serve"
	"insitu/internal/study"
)

func main() {
	// 1. Measure and fit, exactly what `renderd -bootstrap` does.
	var plan []study.Config
	for _, n := range []int{10, 14, 18} {
		for _, img := range []int{64, 128} {
			plan = append(plan, study.Config{
				Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke",
				Tasks: 1, ImageSize: img, N: n, Frames: 2,
			})
		}
	}
	fmt.Printf("measuring %d configurations...\n", len(plan))
	rows, err := study.Run(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := study.FitSnapshot(rows, "session-example")
	if err != nil {
		log.Fatal(err)
	}
	reg := registry.New(1024)
	if err := reg.Load(snap); err != nil {
		log.Fatal(err)
	}

	srv := serve.New(advisor.New(reg), serve.Config{
		Arch: "cpu", Workers: 2, PrefetchDepth: 3,
	})
	defer srv.Close()

	// 2. Open a session: admitted once, runner pinned, camera path
	// tracked from here on. Camera fields are the opening pose.
	sess, err := srv.OpenSession(serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 12, Width: 96,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	info := sess.Info()
	fmt.Printf("\nsession %s: %dx%d n=%d, prefetch depth %d\n",
		info.ID, info.Width, info.Height, info.N, info.PrefetchDepth)

	// 3. Orbit. The first lap renders each angle on demand; from the
	// second pose onward the constant-velocity predictor sees the orbit
	// and prefetches ahead into the ~30ms think time, so steady-state
	// frames are sub-millisecond speculative cache hits.
	fmt.Println("\n-- orbiting 15 degrees per frame, 30ms think time --")
	az := 0.0
	for i := 0; i < 16; i++ {
		t0 := time.Now()
		res, err := sess.Frame(az, 0)
		if err != nil {
			log.Fatal(err)
		}
		ttp := time.Since(t0)
		tag := "rendered"
		if res.PrefetchHit {
			tag = "prefetch hit"
		} else if res.CacheHit {
			tag = "cache hit"
		}
		fmt.Printf("frame %2d az %5.1f: %8s  (%s)\n",
			i, az, ttp.Round(time.Microsecond), tag)
		az += 15
		if az >= 360 {
			az -= 360
		}
		time.Sleep(30 * time.Millisecond)
	}

	// 4. The counters behind it: how many frames were answered from a
	// speculatively rendered cache entry, and what the speculation cost.
	st := srv.Stats()
	fmt.Printf("\nsession: %d frames, %d prefetch hits\n",
		sess.Frames(), sess.PrefetchHits())
	fmt.Printf("server:  %d speculative renders scheduled, %d rendered, %d stale, %d held back (no headroom)\n",
		st.PrefetchScheduled, st.PrefetchRendered, st.PrefetchStale, st.PrefetchNoHeadroom)
	fmt.Printf("runner cache: %d leases, %d pinned\n",
		st.RunnerCache.Leases, st.RunnerCache.Pinned)
}
