// Imagedb is the image-database in situ use case that motivates the
// paper's feasibility question: while a simulation runs, extract many
// renderings per time step from different camera angles (the Cinema
// workflow), so scientists can explore the results post hoc without
// storing the full simulation state.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"insitu/internal/conduit"
	"insitu/internal/sim"
	"insitu/internal/strawman"
)

func main() {
	proxy := flag.String("sim", "cloverleaf", "proxy simulation (cloverleaf, kripke, lulesh)")
	steps := flag.Int("steps", 3, "simulation cycles")
	cameras := flag.Int("cameras", 6, "camera angles per cycle")
	size := flag.Int("size", 256, "image size")
	out := flag.String("out", "imagedb_out", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	s, err := sim.New(*proxy, 20, 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The canonical Strawman integration: describe once, publish every
	// cycle (zero-copy), execute an action list per extraction.
	opts := conduit.NewNode()
	opts.Set("device", "cpu")
	sman, err := strawman.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sman.Close()

	data := conduit.NewNode()
	images := 0
	for cyc := 0; cyc < *steps; cyc++ {
		s.Step()
		s.Publish(data)
		if err := sman.Publish(data); err != nil {
			log.Fatal(err)
		}
		for c := 0; c < *cameras; c++ {
			actions := conduit.NewNode()
			add := actions.Append()
			add.Set("action", "add_plot")
			add.Set("var", s.PrimaryField())
			add.Set("renderer", "raytracer")
			save := actions.Append()
			save.Set("action", "save_image")
			save.Set("fileName", filepath.Join(*out,
				fmt.Sprintf("%s_c%03d_v%02d", *proxy, s.Cycle(), c)))
			save.Set("width", *size)
			save.Set("height", *size)
			save.Set("camera/azimuth", float64(c)*360/float64(*cameras))
			save.Set("camera/elevation", 20.0)
			save.Set("camera/zoom", 1.2)
			if err := sman.Execute(actions); err != nil {
				log.Fatal(err)
			}
			images++
		}
		fmt.Printf("cycle %d: %d views rendered (vis %.3fs)\n",
			s.Cycle(), *cameras, sman.LastVisTime.Seconds())
	}
	fmt.Printf("image database: %d images in %s\n", images, *out)
}
