// Renderd walks the render-serving subsystem end to end in one
// process: measure a small study on this machine, fit and load the
// models, stand up the model-gated render server, and then drive it the
// way a client would — a frame within budget, the same frame again from
// the cache, a tight deadline that is admitted only after degradation,
// an impossible deadline that is rejected with the predicted time, and
// finally enough served frames that the calibration loop refits the
// models and bumps the registry generation.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/serve"
	"insitu/internal/study"
)

func main() {
	// 1. Measure and fit: a small single-architecture corpus, exactly
	// what `renderd -bootstrap` does with a bigger plan.
	var plan []study.Config
	for _, n := range []int{10, 14, 18} {
		for _, img := range []int{64, 128} {
			for _, r := range []core.Renderer{core.RayTrace, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}
	fmt.Printf("measuring %d configurations...\n", len(plan))
	rows, err := study.Run(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := study.FitSnapshot(rows, "renderd-example")
	if err != nil {
		log.Fatal(err)
	}
	reg := registry.New(1024)
	if err := reg.Load(snap); err != nil {
		log.Fatal(err)
	}

	// 2. Serve: advisor engine + calibrator + render-serving subsystem,
	// behind the same HTTP handler cmd/renderd exposes.
	engine := advisor.New(reg)
	engine.SetObserver(&study.Calibrator{
		Source: "renderd-example-frames", RefitEvery: 4, MaxCorpus: 4096,
		Base: func() (*registry.Snapshot, uint64) {
			v, err := reg.View()
			if err != nil {
				return nil, reg.Generation()
			}
			return v.Snapshot(), v.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			return reg.PublishIf(s, baseGen)
		},
	})
	srv := serve.New(engine, serve.Config{Arch: "cpu", Workers: 2})
	defer srv.Close()

	// The serving subsystem is an ordinary library; cmd/renderd's HTTP
	// layer is a thin shell over srv.Render. Here we call the library
	// directly and show one request over HTTP for the wire format.
	fmt.Println("\n-- a frame within budget --")
	res, err := srv.Render(serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 16, Width: 256, DeadlineMillis: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %dx%d n=%d: predicted %.1fms, measured %.1fms, %d PNG bytes\n",
		res.Width, res.Height, res.N, res.PredictedSeconds*1e3, res.RenderSeconds*1e3, len(res.PNG))
	if err := os.WriteFile("renderd-frame.png", res.PNG, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote renderd-frame.png")

	fmt.Println("\n-- the same frame again: cache hit, identical bytes --")
	res2, err := srv.Render(serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 16, Width: 256, DeadlineMillis: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache hit: %v, bytes identical: %v\n",
		res2.CacheHit, len(res2.PNG) == len(res.PNG))

	// 3. Deadline gating: a budget below the full-quality prediction is
	// met by degrading, far below every quality it is refused with the
	// predicted cost — the model saying "no" before any work happens.
	full, err := engine.Predict(advisor.PredictRequest{
		Arch: "cpu", Renderer: string(core.RayTrace), N: 24, Tasks: 1, Width: 1024, Renderings: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- tight deadline (half the %.0fms full-quality prediction) --\n", full.PerImageSeconds*1e3)
	res3, err := srv.Render(serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 24, Width: 1024,
		DeadlineMillis: full.PerImageSeconds / 2 * 1e3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted after %d degrade steps: served %dx%d n=%d (predicted %.1fms)\n",
		res3.DegradeSteps, res3.Width, res3.Height, res3.N, res3.PredictedSeconds*1e3)

	fmt.Println("\n-- impossible deadline: rejected with the prediction --")
	_, err = srv.Render(serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 24, Width: 1024, DeadlineMillis: 0.001,
	})
	fmt.Printf("rejected: %v\n", err)

	// 4. The closed loop: served frames are measurements; after enough
	// of them the calibrator refits and republishes, visible as a
	// generation bump — the models renderd gates with are now fitted to
	// renderd's own traffic.
	gen0 := reg.Generation()
	fmt.Printf("\n-- calibration: generation %d, serving frames... --\n", gen0)
	for i := 0; i < 10; i++ {
		_, err := srv.Render(serve.FrameRequest{
			Backend: core.Volume, Sim: "kripke",
			N: 10 + 2*(i%3), Width: 96, Azimuth: float64(20 * i),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Generation() == gen0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("generation %d -> %d (source %q)\n",
		gen0, reg.Generation(), reg.Snapshot().Source)
	st := srv.Stats()
	fmt.Printf("metrics: %d rendered, %d cache hits, %d observations fed, %d refits\n",
		st.FramesRendered, st.CacheHits, st.ObservationsQueued, st.Refits)

	// 5. One request over the wire, exactly as cmd/renderd serves it.
	overHTTP(srv)
}

// overHTTP shows the wire format: GET /v1/frame with query parameters,
// quality and timing in X-Renderd-* headers, PNG in the body.
func overHTTP(srv *serve.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/frame", func(w http.ResponseWriter, r *http.Request) {
		res, err := srv.Render(serve.FrameRequest{
			Backend: core.Volume, Sim: "kripke", N: 12, Width: 96,
		})
		if err != nil {
			b, _ := json.Marshal(map[string]string{"error": err.Error()})
			w.WriteHeader(http.StatusBadRequest)
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		w.Header().Set("X-Renderd-Cache", fmt.Sprint(res.CacheHit))
		w.Write(res.PNG)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/frame")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	fmt.Printf("\nHTTP GET /v1/frame: %s, %s, %d bytes\n",
		resp.Status, resp.Header.Get("Content-Type"), n)
}
