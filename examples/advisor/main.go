// Advisor walks the full serving path of the feasibility-advisor
// subsystem: measure a small study on this machine, export the fitted
// models as a registry snapshot (the same JSON "repro export" writes),
// load it back the way advisord does, and answer the paper's viability
// questions through the advisor engine — including a hot reload after the
// models are refreshed.
//
// Run with -serve to also start the HTTP API and query it over loopback.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

func main() {
	verbose := flag.Bool("v", false, "log study progress")
	flag.Parse()

	// 1. Measure: a small single-architecture corpus (the feed advisord
	// normally gets from "repro export").
	var plan []study.Config
	for _, n := range []int{10, 14, 18, 22} {
		for _, img := range []int{64, 128, 192} {
			for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}
	// io.Writer, not *os.File: a typed-nil file would defeat study.Run's
	// w != nil silent-mode check.
	var logW io.Writer
	if *verbose {
		logW = os.Stdout
	}
	fmt.Printf("measuring %d configurations...\n", len(plan))
	rows, err := study.Run(plan, logW)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Export: fit + calibrate + publish the versioned snapshot.
	dir, err := os.MkdirTemp("", "advisor-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "models.json")
	snap, err := study.ExportModels(rows, "example", path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d models to %s\n", len(snap.Models), path)
	for _, m := range snap.Models {
		fmt.Printf("  %-20s R2=%.3f residual=%.2gs n=%d\n",
			m.Arch+"/"+m.Renderer, m.Fit.R2, m.Fit.ResidualSD, m.Fit.N)
	}

	// 3. Serve: load the snapshot into a registry and ask the engine the
	// questions advisord exposes over HTTP.
	reg := registry.New(1024)
	if err := reg.LoadFile(path); err != nil {
		log.Fatal(err)
	}
	eng := advisor.New(reg)

	fmt.Println("\ncan I render 100 images in 60 s? (N=32 per task)")
	resp, err := eng.Feasibility(advisor.FeasibilityRequest{
		Arch: "cpu", Renderer: "raytracer", N: 32, Tasks: 1,
		BudgetSeconds: 60, Sizes: []int{256, 512, 1024, 2048}, Images: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range resp.Points {
		verdict := "no"
		if *pt.Feasible {
			verdict = "yes"
		}
		fmt.Printf("  %5d px: %8.0f images fit (%.4fs/image) -> %s\n",
			pt.ImageSize, pt.Images, pt.PerImageSeconds, verdict)
	}

	fmt.Println("\nlargest geometry inside a 30 fps budget at 1024px:")
	mt, err := eng.MaxTriangles(advisor.MaxTrianglesRequest{
		Arch: "cpu", Renderer: "raytracer", Tasks: 1, ImageSize: 1024,
		PerImageBudgetSeconds: 1.0 / 30, Renderings: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  N=%d per task (~%.0f triangles), predicted %.4fs/image\n",
		mt.N, mt.Triangles, mt.PerImageSeconds)

	// 4. Hot reload: republish and swap without dropping the engine.
	snap.Source = "example-refreshed"
	if err := snap.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot reload: generation %d now serves source %q\n",
		reg.Generation(), reg.Snapshot().Source)

	// 5. The same questions over HTTP, exactly as advisord serves them.
	queryOverHTTP(eng)
}

// queryOverHTTP starts the advisord handler on a loopback listener and
// issues one feasibility request against it.
func queryOverHTTP(eng *advisor.Engine) {
	// The example reuses the engine directly; advisord's HTTP layer is a
	// thin JSON shell over it, so a plain handler suffices here.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/feasibility", func(w http.ResponseWriter, r *http.Request) {
		var req advisor.FeasibilityRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := eng.Feasibility(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	srv := http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	body, _ := json.Marshal(advisor.FeasibilityRequest{
		Arch: "cpu", Renderer: "volume", N: 24, Tasks: 1,
		BudgetSeconds: 10, Sizes: []int{256, 1024},
	})
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/feasibility", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	fmt.Printf("\nHTTP /v1/feasibility says:\n%s", out)
}
