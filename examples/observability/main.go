// Observability walks the telemetry a running renderd exposes, all
// in-process: fit models, serve frames, then read the three surfaces
// the server grew for watching itself — per-frame lifecycle traces
// (where a slow frame actually spent its time), per-stage latency
// histograms (the tail, not the mean), and model-drift distributions
// (how wrong the fitted predictions are, per backend and term). The
// drift series is the early-warning channel: a stale model shows up as
// a skewed residual distribution long before deadline_misses climbs,
// because admission keeps enough slack to absorb moderate error. The
// example forces that staleness by fitting on tiny configurations and
// then serving far larger frames, and prints the same snapshot as the
// Prometheus text exposition renderd serves at /metrics.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/registry"
	"insitu/internal/serve"
	"insitu/internal/study"
)

func main() {
	// 1. Measure and fit on deliberately small configurations — the
	// models will extrapolate badly to the bigger frames served below,
	// which is exactly the staleness the drift telemetry exists to catch.
	var plan []study.Config
	for _, n := range []int{8, 10, 12} {
		for _, img := range []int{48, 64} {
			plan = append(plan, study.Config{
				Arch: "cpu", Renderer: core.RayTrace, Sim: "kripke",
				Tasks: 1, ImageSize: img, N: n, Frames: 2,
			})
		}
	}
	fmt.Printf("measuring %d small configurations...\n", len(plan))
	rows, err := study.Run(plan, nil)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := study.FitSnapshot(rows, "observability-example")
	if err != nil {
		log.Fatal(err)
	}
	reg := registry.New(1024)
	if err := reg.Load(snap); err != nil {
		log.Fatal(err)
	}
	srv := serve.New(advisor.New(reg), serve.Config{Arch: "cpu", Workers: 2})
	defer srv.Close()

	// 2. Serve traffic: small frames the models know, one repeat (a
	// cache hit), then frames well outside the measured range.
	for _, req := range []serve.FrameRequest{
		{Backend: core.RayTrace, Sim: "kripke", N: 10, Width: 64},
		{Backend: core.RayTrace, Sim: "kripke", N: 12, Width: 64},
		{Backend: core.RayTrace, Sim: "kripke", N: 10, Width: 64}, // repeat: cache hit
		{Backend: core.RayTrace, Sim: "kripke", N: 20, Width: 160},
		{Backend: core.RayTrace, Sim: "kripke", N: 24, Width: 192},
	} {
		if _, err := srv.Render(req); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Lifecycle traces: every frame commits a timeline of spans, one
	// per stage its path took. A cache hit is a single admit span; a
	// rendered frame accounts for admission, queue wait, runner lease,
	// render, encode, and the cache store. The same data answers
	// GET /v1/trace (and format=chrome for chrome://tracing).
	fmt.Println("\n-- frame lifecycle traces (newest last) --")
	traces := srv.Traces(5)
	for _, tr := range traces {
		j := tr.JSON()
		tag := ""
		if j.CacheHit {
			tag = "  [cache hit]"
		}
		fmt.Printf("frame %d  %s n=%d %dpx  wall %8.3fms%s\n",
			j.Seq, j.Backend, j.N, j.Width, j.WallSeconds*1e3, tag)
		for _, sp := range j.Spans {
			fmt.Printf("    %-13s +%8.3fms  %8.3fms\n",
				sp.Stage, sp.StartSeconds*1e3, sp.DurationSeconds*1e3)
		}
	}

	// 4. Per-stage latency histograms: the aggregate view of the same
	// spans. Log-spaced buckets, exact counts, interpolated quantiles —
	// this is serve.frame_stages in GET /v1/metrics.
	st := srv.Stats()
	fmt.Println("\n-- per-stage latency (aggregated over all frames) --")
	fmt.Printf("%-13s %6s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99")
	row := func(name string, h obs.HistogramJSON) {
		fmt.Printf("%-13s %6d %9.3fms %9.3fms %9.3fms\n",
			name, h.Count, h.P50Seconds*1e3, h.P95Seconds*1e3, h.P99Seconds*1e3)
	}
	row("total", st.FrameStages.Total)
	for _, s := range st.FrameStages.Stages {
		row(s.Stage, s.HistogramJSON)
	}

	// 5. Model drift: every rendered frame records its relative residual
	// (predicted − measured) / measured, bucketed per backend × term.
	// Mean error near zero means the models still describe the traffic;
	// the big frames above were extrapolated, so expect a visible skew.
	// Watch this series (serve.model_drift in /v1/metrics) to recalibrate
	// before deadline_misses starts climbing.
	fmt.Println("\n-- model drift: (predicted - measured) / measured --")
	for _, d := range st.ModelDrift {
		if d.Count == 0 {
			continue
		}
		fmt.Printf("%s/%s: %d frames, mean error %+6.1f%%, mean |error| %5.1f%%\n",
			d.Backend, d.Term, d.Count, 100*d.MeanError, 100*d.MeanAbs)
		for _, b := range d.Buckets {
			if b.Count > 0 {
				fmt.Printf("    < %+5.2f: %s\n", b.Lt, strings.Repeat("#", int(b.Count)))
			}
		}
	}

	// 6. The Prometheus exposition renders the identical snapshot as
	// scrape-ready text — renderd serves this at /metrics, no sidecar.
	fmt.Println("\n-- /metrics exposition (drift series excerpt) --")
	var b strings.Builder
	if err := obs.WriteProm(&b, "renderd_serve", st); err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.Contains(line, "model_drift") && shown < 8 {
			fmt.Println(line)
			shown++
		}
	}

	// 7. And the Chrome trace dump, for when a timeline needs eyeballs:
	// load this file in chrome://tracing or https://ui.perfetto.dev.
	out, err := os.CreateTemp("", "renderd-trace-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := obs.WriteChromeTrace(out, traces); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchrome trace dump: %s (open in chrome://tracing)\n", out.Name())
}
