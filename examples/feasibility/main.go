// Feasibility answers the paper's headline question end to end: it runs a
// small measurement study on this machine, fits the performance models,
// and reports (a) how many images of each size fit in a 60-second budget
// and (b) where ray tracing beats rasterization — before committing any
// simulation time to rendering.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"insitu/internal/core"
	"insitu/internal/study"
)

func main() {
	verbose := flag.Bool("v", false, "log study progress")
	flag.Parse()

	// 1. Measure: a small single-architecture corpus.
	var plan []study.Config
	for _, n := range []int{12, 16, 20, 24} {
		for _, img := range []int{96, 160, 224} {
			for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 3,
				})
			}
		}
	}
	// io.Writer, not *os.File: a typed-nil file would defeat study.Run's
	// w != nil silent-mode check.
	var logW io.Writer
	if *verbose {
		logW = os.Stdout
	}
	fmt.Printf("measuring %d configurations...\n", len(plan))
	rows, err := study.Run(plan, logW)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Fit the complexity models.
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		log.Fatal(err)
	}
	mp := core.CalibrateMapping(samples)
	for k, m := range set.Models {
		fmt.Printf("model %-16s R2=%.3f coef=%v\n", k, m.Fit.R2, m.Coefficients())
	}

	// 3. Ask the feasibility question: a 60 s budget, 32^3 cells per task.
	fmt.Println("\nimages renderable in a 60 s budget (N=32, 1 task):")
	sizes := []int{256, 512, 1024, 2048}
	for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
		pts, err := set.ImagesInBudget("cpu", r, mp, 32, 1, 60, sizes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s", r)
		for _, p := range pts {
			fmt.Printf("  %5d px: %8.0f", p.ImageSize, p.Images)
		}
		fmt.Println()
	}

	// 4. Ray tracing vs rasterization.
	cells, err := set.CompareRTvsRaster("cpu", mp, 1, 100,
		[]int{256, 1024, 4096}, []int{32, 128, 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted raytrace/raster time ratio (<1 means ray tracing wins):")
	for _, c := range cells {
		if !c.Finite {
			fmt.Printf("  N=%-4d img=%-5d ratio=n/a (degenerate fit)\n", c.N, c.ImageSize)
			continue
		}
		fmt.Printf("  N=%-4d img=%-5d ratio=%.2f\n", c.N, c.ImageSize, c.Ratio)
	}
}
