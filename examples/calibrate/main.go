// Calibrate walks the continuous measure→fit→serve loop in one process:
// a parallel study runner streams completed measurements into a
// Calibrator, every refit publishes a new registry generation while the
// study is still running, and the advisor engine's answers sharpen live —
// the in-process equivalent of a study machine POSTing its rows to a
// running advisord's /v1/observations endpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

func main() {
	workers := flag.Int("parallel", runtime.GOMAXPROCS(0), "study worker goroutines")
	flag.Parse()

	// The question we keep asking while the models converge.
	ask := advisor.PredictRequest{Arch: "cpu", Renderer: "volume", N: 24, Tasks: 1, Width: 256}

	// A single-architecture corpus, measured by the worker pool.
	var plan []study.Config
	for _, n := range []int{10, 14, 18, 22} {
		for _, img := range []int{64, 128, 192} {
			for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
				plan = append(plan, study.Config{
					Arch: "cpu", Renderer: r, Sim: "kripke",
					Tasks: 1, ImageSize: img, N: n, Frames: 2,
				})
			}
		}
	}

	reg := registry.New(256)
	engine := advisor.New(reg)
	calib := &study.Calibrator{
		Source:     "calibrate-example",
		RefitEvery: 9,
		Base: func() (*registry.Snapshot, uint64) {
			return reg.Snapshot(), reg.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			return reg.PublishIf(s, baseGen)
		},
	}

	fmt.Printf("measuring %d configurations on %d workers, refit every %d samples...\n",
		len(plan), *workers, calib.RefitEvery)
	_, err := study.RunContext(context.Background(), plan, study.Options{
		Workers: *workers,
		Progress: func(p study.Progress) {
			_, published, _, oerr := calib.Observe([]core.Sample{p.Row.Sample})
			if oerr != nil {
				log.Fatal(oerr)
			}
			if !published {
				return
			}
			// The models just hot-swapped mid-study; ask again.
			resp, perr := engine.Predict(ask)
			if perr != nil {
				fmt.Printf("  gen %d (%3d/%3d measured): %s/%s not fitted yet\n",
					reg.Generation(), p.Done, p.Total, ask.Arch, ask.Renderer)
				return
			}
			fmt.Printf("  gen %d (%3d/%3d measured): volume %dx%d at N=%d -> %.4fs/image\n",
				reg.Generation(), p.Done, p.Total,
				ask.Width, ask.Width, ask.N, resp.PerImageSeconds)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Flush the tail of the corpus into one final generation.
	if _, _, err := calib.Refit(); err != nil {
		log.Fatal(err)
	}
	resp, err := engine.Predict(ask)
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()
	fmt.Printf("\nfinal: generation %d, %d models, corpus %d samples\n",
		reg.Generation(), len(snap.Models), calib.CorpusSize())
	fmt.Printf("answer: %s/%s N=%d %dx%d -> %.4fs/image (%.1f images/s)\n",
		ask.Arch, ask.Renderer, ask.N, ask.Width, ask.Width,
		resp.PerImageSeconds, resp.ImagesPerSecond)
}
