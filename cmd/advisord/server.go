package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/registry"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is a
// few thousand batched predictions.
const maxBodyBytes = 4 << 20

// server wires the advisor engine to HTTP.
type server struct {
	engine *advisor.Engine
	start  time.Time
}

func newServer(e *advisor.Engine) *server {
	return &server{engine: e, start: time.Now()}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/feasibility", s.handleFeasibility)
	mux.HandleFunc("POST /v1/max_triangles", s.handleMaxTriangles)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// errStatus maps engine errors to HTTP statuses: unknown models are 404,
// everything else the client sent is 400.
func errStatus(err error) int {
	if errors.Is(err, registry.ErrNoModel) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// bodyErrStatus distinguishes an oversized body (413) from malformed
// JSON (400).
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, bodyErrStatus(err), errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// healthzBody is the liveness document.
type healthzBody struct {
	Status        string `json:"status"`
	Models        int    `json:"models"`
	Generation    uint64 `json:"generation"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	LastReload    int64  `json:"last_reload_unix,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reg := s.engine.Registry()
	body := healthzBody{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if lr := reg.LastReload(); !lr.IsZero() {
		body.LastReload = lr.Unix()
	}
	// One consistent view: generation and model count from the same load.
	v, err := reg.View()
	if err != nil {
		body.Status = "empty"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body.Generation = v.Generation()
	body.Models = len(v.Snapshot().Models)
	writeJSON(w, http.StatusOK, body)
}

// modelsBody lists the registry contents.
type modelsBody struct {
	Generation  uint64              `json:"generation"`
	Source      string              `json:"source"`
	CreatedUnix int64               `json:"created_unix"`
	Mapping     registry.MappingDoc `json:"mapping"`
	Archs       []string            `json:"archs"`
	Models      []registry.ModelDoc `json:"models"`
	Compositing *registry.ModelDoc  `json:"compositing,omitempty"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	v, err := s.engine.Registry().View()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no registry loaded"})
		return
	}
	snap := v.Snapshot()
	archs := make([]string, 0, 2)
	seen := map[string]bool{}
	for _, d := range snap.Models {
		if !seen[d.Arch] {
			seen[d.Arch] = true
			archs = append(archs, d.Arch)
		}
	}
	sort.Strings(archs)
	writeJSON(w, http.StatusOK, modelsBody{
		Generation:  v.Generation(),
		Source:      snap.Source,
		CreatedUnix: snap.CreatedUnix,
		Mapping:     snap.Mapping,
		Archs:       archs,
		Models:      snap.Models,
		Compositing: snap.Compositing,
	})
}

// handlePredict accepts one request object or a JSON array of them; a
// batch answers with positionally aligned items so one bad element does
// not fail the rest.
func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, bodyErrStatus(err), errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []advisor.PredictRequest
		if err := json.Unmarshal(body, &reqs); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad batch body: " + err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, s.engine.PredictBatch(reqs))
		return
	}
	var req advisor.PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := s.engine.Predict(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleFeasibility(w http.ResponseWriter, r *http.Request) {
	var req advisor.FeasibilityRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.engine.Feasibility(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMaxTriangles(w http.ResponseWriter, r *http.Request) {
	var req advisor.MaxTrianglesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.engine.MaxTriangles(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsBody reports per-operation latency and cache effectiveness.
type metricsBody struct {
	UptimeSeconds int64             `json:"uptime_seconds"`
	Ops           []advisor.OpStats `json:"ops"`
	Cache         cacheBody         `json:"cache"`
}

type cacheBody struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, size := s.engine.Registry().CacheStats()
	writeJSON(w, http.StatusOK, metricsBody{
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Ops:           s.engine.Metrics(),
		Cache:         cacheBody{Hits: hits, Misses: misses, Size: size},
	})
}

// handleReload hot-reloads the registry file; on failure the previous
// models keep serving and the error is reported.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	reg := s.engine.Registry()
	if err := reg.Reload(); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	v, err := reg.View()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, healthzBody{
		Status:        "ok",
		Models:        len(v.Snapshot().Models),
		Generation:    v.Generation(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		LastReload:    reg.LastReload().Unix(),
	})
}

// logRequests is minimal access logging middleware.
func logRequests(logf func(format string, args ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
