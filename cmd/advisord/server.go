package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/registry"
	"insitu/internal/serve"
)

// maxBodyBytes bounds request bodies; the largest legitimate payload is a
// few thousand batched predictions.
const maxBodyBytes = 4 << 20

// server wires the advisor engine to HTTP.
type server struct {
	engine *advisor.Engine
	start  time.Time

	// Observation ingestion: validated sample batches queue here and a
	// background worker refits off the request path. Nil until
	// startCalibration. obsMu orders handler enqueues against
	// stopCalibration's close so a request that outlives the server's
	// drain window cannot send on a closed channel.
	obsMu     sync.RWMutex
	obsCh     chan []core.Sample
	obsClosed bool
	obsWG     sync.WaitGroup
	obsLogf   func(format string, args ...any)
}

func newServer(e *advisor.Engine) *server {
	return &server{engine: e, start: time.Now()}
}

// startCalibration opens the observation queue and starts the background
// refit worker. The engine must already have an observer configured.
func (s *server) startCalibration(queue int, logf func(format string, args ...any)) {
	if queue < 1 {
		queue = 1
	}
	s.obsCh = make(chan []core.Sample, queue)
	s.obsLogf = logf
	s.obsWG.Add(1)
	go func() {
		defer s.obsWG.Done()
		for batch := range s.obsCh {
			resp, err := s.engine.Observe(batch)
			if err != nil {
				s.obsLogf("observe: %d samples rejected: %v", len(batch), err)
				continue
			}
			if resp.Published {
				s.obsLogf("observe: corpus %d, published generation %d", resp.CorpusSize, resp.Generation)
			}
		}
	}()
}

// stopCalibration drains the queue and stops the worker. Batches already
// accepted are refitted; late handlers answer 503.
func (s *server) stopCalibration() {
	s.obsMu.Lock()
	if s.obsCh == nil || s.obsClosed {
		s.obsMu.Unlock()
		return
	}
	s.obsClosed = true
	close(s.obsCh)
	s.obsMu.Unlock()
	s.obsWG.Wait()
}

// enqueueObservations hands a validated batch to the background worker.
// ok=false means ingestion is disabled or stopped; full=true means the
// queue had no room.
func (s *server) enqueueObservations(samples []core.Sample) (ok, full bool) {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	if s.obsCh == nil || s.obsClosed {
		return false, false
	}
	select {
	case s.obsCh <- samples:
		return true, false
	default:
		return false, true
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/feasibility", s.handleFeasibility)
	mux.HandleFunc("POST /v1/max_triangles", s.handleMaxTriangles)
	mux.HandleFunc("POST /v1/observations", s.handleObservations)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handleProm)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	return mux
}

// writeJSON is the shared buffered-encode helper (clean 500 instead of
// a truncated 200 on an encoding failure).
func writeJSON(w http.ResponseWriter, status int, v any) {
	serve.WriteJSON(w, status, v)
}

type errorBody struct {
	Error string `json:"error"`
}

// errStatus maps engine errors to HTTP statuses: unknown models are 404,
// everything else the client sent is 400.
func errStatus(err error) int {
	if errors.Is(err, registry.ErrNoModel) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// bodyErrStatus distinguishes an oversized body (413) from malformed
// JSON (400).
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, bodyErrStatus(err), errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// healthzBody is the liveness document.
type healthzBody struct {
	Status        string `json:"status"`
	Models        int    `json:"models"`
	Generation    uint64 `json:"generation"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	LastReload    int64  `json:"last_reload_unix,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reg := s.engine.Registry()
	body := healthzBody{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if lr := reg.LastReload(); !lr.IsZero() {
		body.LastReload = lr.Unix()
	}
	// One consistent view: generation and model count from the same load.
	v, err := reg.View()
	if err != nil {
		body.Status = "empty"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body.Generation = v.Generation()
	body.Models = len(v.Snapshot().Models)
	writeJSON(w, http.StatusOK, body)
}

// modelsBody lists the registry contents.
type modelsBody struct {
	Generation  uint64              `json:"generation"`
	Source      string              `json:"source"`
	CreatedUnix int64               `json:"created_unix"`
	Mapping     registry.MappingDoc `json:"mapping"`
	Archs       []string            `json:"archs"`
	Models      []registry.ModelDoc `json:"models"`
	Compositing *registry.ModelDoc  `json:"compositing,omitempty"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	v, err := s.engine.Registry().View()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no registry loaded"})
		return
	}
	snap := v.Snapshot()
	archs := make([]string, 0, 2)
	seen := map[string]bool{}
	for _, d := range snap.Models {
		if !seen[d.Arch] {
			seen[d.Arch] = true
			archs = append(archs, d.Arch)
		}
	}
	sort.Strings(archs)
	writeJSON(w, http.StatusOK, modelsBody{
		Generation:  v.Generation(),
		Source:      snap.Source,
		CreatedUnix: snap.CreatedUnix,
		Mapping:     snap.Mapping,
		Archs:       archs,
		Models:      snap.Models,
		Compositing: snap.Compositing,
	})
}

// handlePredict accepts one request object or a JSON array of them; a
// batch answers with positionally aligned items so one bad element does
// not fail the rest.
func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, bodyErrStatus(err), errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []advisor.PredictRequest
		if err := json.Unmarshal(body, &reqs); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad batch body: " + err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, s.engine.PredictBatch(reqs))
		return
	}
	var req advisor.PredictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := s.engine.Predict(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleFeasibility(w http.ResponseWriter, r *http.Request) {
	var req advisor.FeasibilityRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.engine.Feasibility(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMaxTriangles(w http.ResponseWriter, r *http.Request) {
	var req advisor.MaxTrianglesRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.engine.MaxTriangles(req)
	if err != nil {
		writeJSON(w, errStatus(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// observationsAccepted is the 202 body for a queued observation batch:
// the refit happens in the background, so the generation reported here is
// the one serving at accept time — poll /v1/models (or /healthz) for the
// bump.
type observationsAccepted struct {
	Accepted   int    `json:"accepted"`
	Queued     bool   `json:"queued"`
	Generation uint64 `json:"generation"`
}

// handleObservations ingests measured samples for continuous calibration.
// The body is one observation object or a JSON array of them; validation
// is synchronous (a malformed batch is rejected whole with a 400), the
// refit and hot-reload are not.
func (s *server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if s.obsCh == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "observation ingestion disabled (start advisord with -calibrate)"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, bodyErrStatus(err), errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	var obs []advisor.Observation
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(body, &obs)
	} else {
		var one advisor.Observation
		if err = json.Unmarshal(body, &one); err == nil {
			obs = []advisor.Observation{one}
		}
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	samples, err := advisor.SamplesFromObservations(obs)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	// Read the generation before enqueueing: with a fast refit cadence
	// the worker can publish before this handler resumes, and reporting
	// the post-refit generation as the accept-time one would make a
	// client polling for "generation > accepted" wait forever.
	gen := s.engine.Registry().Generation()
	ok, full := s.enqueueObservations(samples)
	switch {
	case ok:
		writeJSON(w, http.StatusAccepted, observationsAccepted{
			Accepted:   len(samples),
			Queued:     true,
			Generation: gen,
		})
	case full:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "calibration queue full, retry later"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "observation ingestion stopped"})
	}
}

// metricsBody reports per-operation latency and cache effectiveness.
type metricsBody struct {
	UptimeSeconds int64             `json:"uptime_seconds"`
	Generation    uint64            `json:"generation"`
	Ops           []advisor.OpStats `json:"ops"`
	Cache         cacheBody         `json:"cache"`
}

type cacheBody struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

func (s *server) metricsSnapshot() metricsBody {
	hits, misses, size := s.engine.Registry().CacheStats()
	return metricsBody{
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Generation:    s.engine.Registry().Generation(),
		Ops:           s.engine.Metrics(),
		Cache:         cacheBody{Hits: hits, Misses: misses, Size: size},
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handleProm renders the same snapshot /v1/metrics serves, as Prometheus
// text exposition, so advisord scrapes with no sidecar.
func (s *server) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteProm(w, "advisord", s.metricsSnapshot())
}

// handleReload hot-reloads the registry file; on failure the previous
// models keep serving and the error is reported.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	reg := s.engine.Registry()
	if err := reg.Reload(); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	v, err := reg.View()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, healthzBody{
		Status:        "ok",
		Models:        len(v.Snapshot().Models),
		Generation:    v.Generation(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		LastReload:    reg.LastReload().Unix(),
	})
}

// logRequests is minimal access logging middleware.
func logRequests(logf func(format string, args ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
