package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/loadgen"
)

// runLoadgen benchmarks sustained QPS against an advisord. With no target
// URL it spins up an in-process server over the given registry, so a
// single command measures what this machine can serve. The request mix
// and reporting (sustained QPS, p50/p95/p99 latency) come from the
// shared loadgen core renderd uses too.
func runLoadgen(target, regPath string, bootstrap bool, cacheSize int, duration time.Duration, concurrency int) error {
	// Per-request timeout so a stalled target cannot wedge a worker past
	// the deadline.
	client := &http.Client{Timeout: 10 * time.Second}
	if target == "" {
		reg, err := openRegistry(regPath, bootstrap, cacheSize)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(newServer(advisor.New(reg)).handler())
		defer ts.Close()
		target = ts.URL
		client = ts.Client()
		client.Timeout = 10 * time.Second
		log.Printf("loadgen: in-process server at %s", target)
	}

	// Ask the target what models it serves so the mix always hits live
	// (arch, renderer) pairs.
	pairs, err := targetModels(client, target)
	if err != nil {
		return err
	}

	// The request mix: mostly single predictions (the interactive hot
	// path), some feasibility curves, an occasional batch.
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	var shots []loadgen.Shot
	for i := 0; i < 64; i++ {
		arch := pairs[i%len(pairs)].arch
		r := pairs[i%len(pairs)].renderer
		req := advisor.PredictRequest{
			Arch: arch, Renderer: r,
			N: 16 + 4*(i%8), Tasks: 1 << (i % 3), Width: 128 + 64*(i%6),
		}
		shots = append(shots, loadgen.Shot{Path: "/v1/predict", Body: mustJSON(req)})
		if i%8 == 0 {
			shots = append(shots, loadgen.Shot{Path: "/v1/feasibility", Body: mustJSON(advisor.FeasibilityRequest{
				Arch: arch, Renderer: r, N: 32, Tasks: 4,
				BudgetSeconds: 60, Sizes: []int{256, 512, 1024, 2048},
			})})
		}
		if i%16 == 0 {
			batch := []advisor.PredictRequest{req, req, req, req}
			shots = append(shots, loadgen.Shot{Path: "/v1/predict", Body: mustJSON(batch)})
		}
	}

	log.Printf("loadgen: %d clients for %s against %s", concurrency, duration, target)
	rep, err := loadgen.Run(loadgen.Options{
		Target: target, Client: client, Shots: shots,
		Duration: duration, Concurrency: concurrency,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nloadgen results\n%s", rep)
	if rep.Failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed", rep.Failed)
	}
	return nil
}

// modelPair is one live (arch, renderer) combination on the target.
type modelPair struct {
	arch, renderer string
}

// targetModels lists the target's registered models via /v1/models.
func targetModels(client *http.Client, target string) ([]modelPair, error) {
	resp, err := client.Get(target + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s from %s/v1/models", resp.Status, target)
	}
	var body modelsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("loadgen: decoding models: %w", err)
	}
	pairs := make([]modelPair, 0, len(body.Models))
	for _, m := range body.Models {
		pairs = append(pairs, modelPair{arch: m.Arch, renderer: m.Renderer})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("loadgen: target serves no models")
	}
	return pairs, nil
}
