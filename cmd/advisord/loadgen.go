package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/advisor"
)

// runLoadgen benchmarks sustained QPS against an advisord. With no target
// URL it spins up an in-process server over the given registry, so a
// single command measures what this machine can serve.
func runLoadgen(target, regPath string, bootstrap bool, cacheSize int, duration time.Duration, concurrency int) error {
	if concurrency < 1 {
		concurrency = 1
	}
	// Per-request timeout so a stalled target cannot wedge a worker past
	// the deadline.
	client := &http.Client{Timeout: 10 * time.Second}
	if target == "" {
		reg, err := openRegistry(regPath, bootstrap, cacheSize)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(newServer(advisor.New(reg)).handler())
		defer ts.Close()
		target = ts.URL
		client = ts.Client()
		client.Timeout = 10 * time.Second
		log.Printf("loadgen: in-process server at %s", target)
	}

	// Ask the target what models it serves so the mix always hits live
	// (arch, renderer) pairs.
	pairs, err := targetModels(client, target)
	if err != nil {
		return err
	}

	// The request mix: mostly single predictions (the interactive hot
	// path), some feasibility curves, an occasional batch.
	type shot struct {
		path string
		body []byte
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	var shots []shot
	for i := 0; i < 64; i++ {
		arch := pairs[i%len(pairs)].arch
		r := pairs[i%len(pairs)].renderer
		req := advisor.PredictRequest{
			Arch: arch, Renderer: r,
			N: 16 + 4*(i%8), Tasks: 1 << (i % 3), Width: 128 + 64*(i%6),
		}
		shots = append(shots, shot{"/v1/predict", mustJSON(req)})
		if i%8 == 0 {
			shots = append(shots, shot{"/v1/feasibility", mustJSON(advisor.FeasibilityRequest{
				Arch: arch, Renderer: r, N: 32, Tasks: 4,
				BudgetSeconds: 60, Sizes: []int{256, 512, 1024, 2048},
			})})
		}
		if i%16 == 0 {
			batch := []advisor.PredictRequest{req, req, req, req}
			shots = append(shots, shot{"/v1/predict", mustJSON(batch)})
		}
	}

	var (
		requests atomic.Uint64
		failures atomic.Uint64
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
	)
	deadline := time.Now().Add(duration)
	log.Printf("loadgen: %d clients for %s against %s", concurrency, duration, target)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, 4096)
			for i := w; time.Now().Before(deadline); i++ {
				sh := shots[i%len(shots)]
				start := time.Now()
				resp, err := client.Post(target+sh.path, "application/json", bytes.NewReader(sh.body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				local = append(local, time.Since(start))
				requests.Add(1)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	n := requests.Load()
	fmt.Printf("\nloadgen results\n")
	fmt.Printf("  requests:    %d ok, %d failed\n", n, failures.Load())
	fmt.Printf("  sustained:   %.0f req/s over %s with %d clients\n",
		float64(n)/duration.Seconds(), duration, concurrency)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(lats)-1))
			return lats[idx]
		}
		fmt.Printf("  latency:     avg %s  p50 %s  p95 %s  p99 %s  max %s\n",
			sum/time.Duration(len(lats)), pct(0.50), pct(0.95), pct(0.99), lats[len(lats)-1])
	}
	if failures.Load() > 0 {
		return fmt.Errorf("loadgen: %d requests failed", failures.Load())
	}
	return nil
}

// modelPair is one live (arch, renderer) combination on the target.
type modelPair struct {
	arch, renderer string
}

// targetModels lists the target's registered models via /v1/models.
func targetModels(client *http.Client, target string) ([]modelPair, error) {
	resp, err := client.Get(target + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s from %s/v1/models", resp.Status, target)
	}
	var body modelsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("loadgen: decoding models: %w", err)
	}
	pairs := make([]modelPair, 0, len(body.Models))
	for _, m := range body.Models {
		pairs = append(pairs, modelPair{arch: m.Arch, renderer: m.Renderer})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("loadgen: target serves no models")
	}
	return pairs, nil
}
