package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

// studyRegistry runs a small real measurement study, exports the fitted
// models through the study pipeline, and returns the snapshot path plus
// the directly fitted set for comparison. Shared across tests because the
// study is the slow part.
var studyOnce struct {
	sync.Once
	dir  string
	rows []study.Row
	err  error
}

func studyRegistry(t *testing.T) (string, *core.ModelSet, core.Mapping) {
	t.Helper()
	studyOnce.Do(func() {
		var plan []study.Config
		for _, n := range []int{8, 10, 12} {
			for _, img := range []int{40, 56} {
				plan = append(plan,
					study.Config{Arch: "serial", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
					study.Config{Arch: "serial", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				)
			}
		}
		studyOnce.dir, studyOnce.err = os.MkdirTemp("", "advisord-test-")
		if studyOnce.err != nil {
			return
		}
		studyOnce.rows, studyOnce.err = study.Run(plan, nil)
	})
	if studyOnce.err != nil {
		t.Fatal(studyOnce.err)
	}
	path := filepath.Join(studyOnce.dir, t.Name()+"-models.json")
	if _, err := study.ExportModels(studyOnce.rows, "study-test", path); err != nil {
		t.Fatal(err)
	}
	samples := study.Samples(studyOnce.rows)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	return path, set, core.CalibrateMapping(samples)
}

// testServer serves the exported registry over httptest.
func testServer(t *testing.T) (*httptest.Server, string, *core.ModelSet, core.Mapping) {
	t.Helper()
	path, set, mp := studyRegistry(t)
	reg := registry.New(1024)
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(advisor.New(reg)).handler())
	t.Cleanup(ts.Close)
	return ts, path, set, mp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("%s: decoding %T: %v", path, resp, err)
		}
	}
	return r.StatusCode
}

// TestFeasibilityServedFromExportedRegistry is the subsystem's acceptance
// test: advisord answers /v1/feasibility from a registry JSON exported by
// the study pipeline, and the numbers match core.ModelSet.ImagesInBudget
// on the in-memory fit exactly.
func TestFeasibilityServedFromExportedRegistry(t *testing.T) {
	ts, _, set, mp := testServer(t)
	sizes := []int{64, 128, 256, 512}
	req := advisor.FeasibilityRequest{
		Arch: "serial", Renderer: "raytracer", N: 16, Tasks: 1,
		BudgetSeconds: 10, Sizes: sizes, Images: 100,
	}
	var resp advisor.FeasibilityResponse
	if code := postJSON(t, ts, "/v1/feasibility", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := set.ImagesInBudget("serial", core.RayTrace, mp, 16, 1, 10, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != len(want) {
		t.Fatalf("points = %d", len(resp.Points))
	}
	for i, pt := range resp.Points {
		if pt.ImageSize != want[i].ImageSize {
			t.Errorf("point %d: size %d want %d", i, pt.ImageSize, want[i].ImageSize)
		}
		if pt.Images != want[i].Images {
			t.Errorf("size %d: images %v, in-memory fit says %v", pt.ImageSize, pt.Images, want[i].Images)
		}
		if pt.PerImageSeconds != want[i].PerImage {
			t.Errorf("size %d: per-image %v, in-memory fit says %v", pt.ImageSize, pt.PerImageSeconds, want[i].PerImage)
		}
		if pt.Feasible == nil {
			t.Errorf("size %d: feasible missing", pt.ImageSize)
		}
	}
}

func TestPredictEndpointSingleAndBatch(t *testing.T) {
	ts, _, set, mp := testServer(t)
	req := advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Tasks: 1, Width: 128}
	var resp advisor.PredictResponse
	if code := postJSON(t, ts, "/v1/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	in := mp.Map(core.Config{N: 12, Tasks: 1, Width: 128, Height: 128, Renderer: core.Volume})
	if want := set.Models[core.Key("serial", core.Volume)].Predict(in); resp.RenderSeconds != want {
		t.Errorf("render = %v want %v", resp.RenderSeconds, want)
	}

	// Batch: an array body answers positionally, isolating bad elements.
	batch := []advisor.PredictRequest{req, {Arch: "nope", Renderer: "volume", N: 12, Width: 128}}
	var items []advisor.BatchItem
	if code := postJSON(t, ts, "/v1/predict", batch, &items); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(items) != 2 || items[0].Response == nil || items[1].Error == "" {
		t.Fatalf("batch items: %+v", items)
	}
	if items[0].Response.RenderSeconds != resp.RenderSeconds {
		t.Error("batch and single disagree")
	}

	// Unknown models are 404, malformed bodies 400.
	if code := postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "gpu", Renderer: "volume", N: 12, Width: 64}, nil); code != http.StatusNotFound {
		t.Errorf("unknown model status %d", code)
	}
	r, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{oops")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", r.StatusCode)
	}

	// Oversized bodies are a size problem (413), not a syntax problem.
	huge := bytes.Repeat([]byte(" "), 5<<20)
	r, err = ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d", r.StatusCode)
	}
}

func TestModelsHealthzMetricsEndpoints(t *testing.T) {
	ts, _, set, _ := testServer(t)

	var models modelsBody
	r, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(models.Models) != len(set.Models) || models.Source != "study-test" {
		t.Errorf("models: %d source %q", len(models.Models), models.Source)
	}
	if len(models.Archs) != 1 || models.Archs[0] != "serial" {
		t.Errorf("archs = %v", models.Archs)
	}
	for _, m := range models.Models {
		if m.Fit.N == 0 || len(m.Fit.Coef) == 0 {
			t.Errorf("model %s/%s missing diagnostics", m.Arch, m.Renderer)
		}
	}

	var hz healthzBody
	r, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if hz.Status != "ok" || hz.Models != len(set.Models) || hz.Generation != 1 {
		t.Errorf("healthz: %+v", hz)
	}

	// Metrics reflect traffic served so far.
	postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Width: 64}, nil)
	var mb metricsBody
	r, err = ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	found := false
	for _, op := range mb.Ops {
		if op.Op == advisor.OpPredict && op.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics missing predict traffic: %+v", mb.Ops)
	}
}

func TestReloadEndpointHotSwapsModels(t *testing.T) {
	ts, path, _, _ := testServer(t)

	// Republish the registry (same content) and reload: generation bumps.
	snap, err := registry.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Source = "republished"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var hz healthzBody
	if code := postJSON(t, ts, "/v1/reload", struct{}{}, &hz); code != http.StatusOK {
		t.Fatalf("reload status %d", code)
	}
	if hz.Generation != 2 {
		t.Errorf("generation after reload = %d", hz.Generation)
	}
	var models modelsBody
	r, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if models.Source != "republished" {
		t.Errorf("source after reload = %q", models.Source)
	}

	// A corrupt file fails the reload but the old models keep serving.
	if err := os.WriteFile(path, []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts, "/v1/reload", struct{}{}, nil); code != http.StatusConflict {
		t.Errorf("corrupt reload status %d", code)
	}
	if code := postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Width: 64}, nil); code != http.StatusOK {
		t.Errorf("serving broke after failed reload: %d", code)
	}
}

func TestMaxTrianglesEndpoint(t *testing.T) {
	ts, _, _, _ := testServer(t)
	var resp advisor.MaxTrianglesResponse
	code := postJSON(t, ts, "/v1/max_triangles", advisor.MaxTrianglesRequest{
		Arch: "serial", Renderer: "raytracer", Tasks: 1, ImageSize: 256,
		PerImageBudgetSeconds: 1, Renderings: 100,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.N <= 0 || resp.Triangles != 12*float64(resp.N)*float64(resp.N) {
		t.Errorf("response: %+v", resp)
	}
}

func TestEmptyRegistryAnswers503(t *testing.T) {
	ts := httptest.NewServer(newServer(advisor.New(registry.New(16))).handler())
	defer ts.Close()
	r, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status %d", r.StatusCode)
	}
	r, err = ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("models status %d", r.StatusCode)
	}
}
