package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/registry"
	"insitu/internal/scenario"
	"insitu/internal/study"
)

// studyRegistry runs a small real measurement study, exports the fitted
// models through the study pipeline, and returns the snapshot path plus
// the directly fitted set for comparison. Shared across tests because the
// study is the slow part.
var studyOnce struct {
	sync.Once
	dir  string
	rows []study.Row
	err  error
}

func studyRegistry(t *testing.T) (string, *core.ModelSet, core.Mapping) {
	t.Helper()
	studyOnce.Do(func() {
		var plan []study.Config
		for _, n := range []int{8, 10, 12} {
			for _, img := range []int{40, 56} {
				plan = append(plan,
					study.Config{Arch: "serial", Renderer: core.RayTrace, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
					study.Config{Arch: "serial", Renderer: core.Volume, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
					// The backend registered through the scenario seam rides
					// the same study plan as the built-ins.
					study.Config{Arch: "serial", Renderer: scenario.VolumeUnstructured, Sim: "kripke", Tasks: 1, ImageSize: img, N: n, Frames: 2},
				)
			}
		}
		studyOnce.dir, studyOnce.err = os.MkdirTemp("", "advisord-test-")
		if studyOnce.err != nil {
			return
		}
		studyOnce.rows, studyOnce.err = study.Run(plan, nil)
	})
	if studyOnce.err != nil {
		t.Fatal(studyOnce.err)
	}
	path := filepath.Join(studyOnce.dir, t.Name()+"-models.json")
	if _, err := study.ExportModels(studyOnce.rows, "study-test", path); err != nil {
		t.Fatal(err)
	}
	samples := study.Samples(studyOnce.rows)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	return path, set, core.CalibrateMapping(samples)
}

// testServer serves the exported registry over httptest.
func testServer(t *testing.T) (*httptest.Server, string, *core.ModelSet, core.Mapping) {
	t.Helper()
	path, set, mp := studyRegistry(t)
	reg := registry.New(1024)
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(advisor.New(reg)).handler())
	t.Cleanup(ts.Close)
	return ts, path, set, mp
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("%s: decoding %T: %v", path, resp, err)
		}
	}
	return r.StatusCode
}

// TestFeasibilityServedFromExportedRegistry is the subsystem's acceptance
// test: advisord answers /v1/feasibility from a registry JSON exported by
// the study pipeline, and the numbers match core.ModelSet.ImagesInBudget
// on the in-memory fit exactly.
func TestFeasibilityServedFromExportedRegistry(t *testing.T) {
	ts, _, set, mp := testServer(t)
	sizes := []int{64, 128, 256, 512}
	req := advisor.FeasibilityRequest{
		Arch: "serial", Renderer: "raytracer", N: 16, Tasks: 1,
		BudgetSeconds: 10, Sizes: sizes, Images: 100,
	}
	var resp advisor.FeasibilityResponse
	if code := postJSON(t, ts, "/v1/feasibility", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := set.ImagesInBudget("serial", core.RayTrace, mp, 16, 1, 10, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != len(want) {
		t.Fatalf("points = %d", len(resp.Points))
	}
	for i, pt := range resp.Points {
		if pt.ImageSize != want[i].ImageSize {
			t.Errorf("point %d: size %d want %d", i, pt.ImageSize, want[i].ImageSize)
		}
		if pt.Images != want[i].Images {
			t.Errorf("size %d: images %v, in-memory fit says %v", pt.ImageSize, pt.Images, want[i].Images)
		}
		if pt.PerImageSeconds != want[i].PerImage {
			t.Errorf("size %d: per-image %v, in-memory fit says %v", pt.ImageSize, pt.PerImageSeconds, want[i].PerImage)
		}
		if pt.Feasible == nil {
			t.Errorf("size %d: feasible missing", pt.ImageSize)
		}
	}
}

func TestPredictEndpointSingleAndBatch(t *testing.T) {
	ts, _, set, mp := testServer(t)
	req := advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Tasks: 1, Width: 128}
	var resp advisor.PredictResponse
	if code := postJSON(t, ts, "/v1/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	in := mp.Map(core.Config{N: 12, Tasks: 1, Width: 128, Height: 128, Renderer: core.Volume})
	if want := set.Models[core.Key("serial", core.Volume)].Predict(in); resp.RenderSeconds != want {
		t.Errorf("render = %v want %v", resp.RenderSeconds, want)
	}

	// Batch: an array body answers positionally, isolating bad elements.
	batch := []advisor.PredictRequest{req, {Arch: "nope", Renderer: "volume", N: 12, Width: 128}}
	var items []advisor.BatchItem
	if code := postJSON(t, ts, "/v1/predict", batch, &items); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(items) != 2 || items[0].Response == nil || items[1].Error == "" {
		t.Fatalf("batch items: %+v", items)
	}
	if items[0].Response.RenderSeconds != resp.RenderSeconds {
		t.Error("batch and single disagree")
	}

	// Unknown models are 404, malformed bodies 400.
	if code := postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "gpu", Renderer: "volume", N: 12, Width: 64}, nil); code != http.StatusNotFound {
		t.Errorf("unknown model status %d", code)
	}
	r, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader([]byte("{oops")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", r.StatusCode)
	}

	// Oversized bodies are a size problem (413), not a syntax problem.
	huge := bytes.Repeat([]byte(" "), 5<<20)
	r, err = ts.Client().Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d", r.StatusCode)
	}
}

func TestModelsHealthzMetricsEndpoints(t *testing.T) {
	ts, _, set, _ := testServer(t)

	var models modelsBody
	r, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(models.Models) != len(set.Models) || models.Source != "study-test" {
		t.Errorf("models: %d source %q", len(models.Models), models.Source)
	}
	if len(models.Archs) != 1 || models.Archs[0] != "serial" {
		t.Errorf("archs = %v", models.Archs)
	}
	for _, m := range models.Models {
		if m.Fit.N == 0 || len(m.Fit.Coef) == 0 {
			t.Errorf("model %s/%s missing diagnostics", m.Arch, m.Renderer)
		}
	}

	var hz healthzBody
	r, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if hz.Status != "ok" || hz.Models != len(set.Models) || hz.Generation != 1 {
		t.Errorf("healthz: %+v", hz)
	}

	// Metrics reflect traffic served so far.
	postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Width: 64}, nil)
	var mb metricsBody
	r, err = ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	found := false
	for _, op := range mb.Ops {
		if op.Op == advisor.OpPredict && op.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics missing predict traffic: %+v", mb.Ops)
	}

	// The Prometheus exposition renders the same snapshot and validates
	// against the text format.
	r, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePromText(string(raw)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, raw)
	}
	for _, want := range []string{"advisord_generation ", "advisord_cache_hits "} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestReloadEndpointHotSwapsModels(t *testing.T) {
	ts, path, _, _ := testServer(t)

	// Republish the registry (same content) and reload: generation bumps.
	snap, err := registry.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap.Source = "republished"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var hz healthzBody
	if code := postJSON(t, ts, "/v1/reload", struct{}{}, &hz); code != http.StatusOK {
		t.Fatalf("reload status %d", code)
	}
	if hz.Generation != 2 {
		t.Errorf("generation after reload = %d", hz.Generation)
	}
	var models modelsBody
	r, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if models.Source != "republished" {
		t.Errorf("source after reload = %q", models.Source)
	}

	// A corrupt file fails the reload but the old models keep serving.
	if err := os.WriteFile(path, []byte("{bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts, "/v1/reload", struct{}{}, nil); code != http.StatusConflict {
		t.Errorf("corrupt reload status %d", code)
	}
	if code := postJSON(t, ts, "/v1/predict", advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Width: 64}, nil); code != http.StatusOK {
		t.Errorf("serving broke after failed reload: %d", code)
	}
}

func TestMaxTrianglesEndpoint(t *testing.T) {
	ts, _, _, _ := testServer(t)
	var resp advisor.MaxTrianglesResponse
	code := postJSON(t, ts, "/v1/max_triangles", advisor.MaxTrianglesRequest{
		Arch: "serial", Renderer: "raytracer", Tasks: 1, ImageSize: 256,
		PerImageBudgetSeconds: 1, Renderings: 100,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.N <= 0 || resp.Triangles != 12*float64(resp.N)*float64(resp.N) {
		t.Errorf("response: %+v", resp)
	}
}

func TestEmptyRegistryAnswers503(t *testing.T) {
	ts := httptest.NewServer(newServer(advisor.New(registry.New(16))).handler())
	defer ts.Close()
	r, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz status %d", r.StatusCode)
	}
	r, err = ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("models status %d", r.StatusCode)
	}
}

// TestObservationsRoundTripRefitsServedModels is the continuous-
// calibration acceptance test: posting measured samples to
// POST /v1/observations must bump the served model generation and change
// subsequent /v1/predict answers — no restart, no explicit reload.
func TestObservationsRoundTripRefitsServedModels(t *testing.T) {
	path, _, _ := studyRegistry(t)
	reg := registry.New(1024)
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	engine := advisor.New(reg)
	engine.SetObserver(&study.Calibrator{
		Source:     "test-observations",
		RefitEvery: 1,
		Base: func() (*registry.Snapshot, uint64) {
			return reg.Snapshot(), reg.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			return reg.PublishIf(s, baseGen)
		},
	})
	srv := newServer(engine)
	srv.startCalibration(16, t.Logf)
	t.Cleanup(srv.stopCalibration)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	predictReq := advisor.PredictRequest{Arch: "serial", Renderer: "volume", N: 12, Tasks: 1, Width: 128}
	var before advisor.PredictResponse
	if code := postJSON(t, ts, "/v1/predict", predictReq, &before); code != http.StatusOK {
		t.Fatalf("baseline predict status %d", code)
	}

	// Plant a dramatically slower volume model for the served arch: the
	// refit over these samples must change the served answer by orders of
	// magnitude.
	var obs []advisor.Observation
	for i := 0; i < 8; i++ {
		ap := float64(4000 + 1000*i)
		cs := float64(10 + 2*i)
		spr := float64(80 + 15*i)
		obs = append(obs, advisor.Observation{
			Arch: "serial", Renderer: "volume",
			Inputs:        core.Inputs{O: cs * cs * cs, AP: ap, SPR: spr, CS: cs, Pixels: 4 * ap, AvgAP: ap, Tasks: 1},
			RenderSeconds: 1e-4*ap*cs + 1e-5*ap*spr + 0.5,
		})
	}
	var accepted struct {
		Accepted   int    `json:"accepted"`
		Queued     bool   `json:"queued"`
		Generation uint64 `json:"generation"`
	}
	if code := postJSON(t, ts, "/v1/observations", obs, &accepted); code != http.StatusAccepted {
		t.Fatalf("observations status %d", code)
	}
	if accepted.Accepted != len(obs) || !accepted.Queued {
		t.Fatalf("accepted body: %+v", accepted)
	}

	// The refit runs in the background; wait for the generation bump.
	deadline := time.Now().Add(10 * time.Second)
	var gen uint64
	for time.Now().Before(deadline) {
		var hz healthzBody
		r, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		gen = hz.Generation
		if gen > accepted.Generation {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if gen <= accepted.Generation {
		t.Fatalf("generation never bumped past %d", accepted.Generation)
	}

	// The served answer changed, by roughly the planted slowdown.
	var after advisor.PredictResponse
	if code := postJSON(t, ts, "/v1/predict", predictReq, &after); code != http.StatusOK {
		t.Fatalf("post-refit predict status %d", code)
	}
	if after.RenderSeconds <= 10*before.RenderSeconds {
		t.Errorf("render prediction %v -> %v: refit did not take effect", before.RenderSeconds, after.RenderSeconds)
	}

	// The generation is visible in /v1/metrics and /v1/models too, and
	// the other models survived the merge.
	var mb metricsBody
	r, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if mb.Generation != gen {
		t.Errorf("metrics generation %d, want %d", mb.Generation, gen)
	}
	var models modelsBody
	r, err = ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if models.Generation != gen || models.Source != "test-observations" {
		t.Errorf("models: generation %d source %q", models.Generation, models.Source)
	}
	if len(models.Models) < 2 {
		t.Errorf("merge dropped models: %d served", len(models.Models))
	}
	if code := postJSON(t, ts, "/v1/predict",
		advisor.PredictRequest{Arch: "serial", Renderer: "raytracer", N: 12, Tasks: 1, Width: 128}, nil); code != http.StatusOK {
		t.Errorf("carried-over raytracer model gone: %d", code)
	}
}

// TestObservationsValidationAndDisabled: malformed batches are rejected
// whole with a 400, and a server without calibration answers 503.
func TestObservationsValidationAndDisabled(t *testing.T) {
	path, _, _ := studyRegistry(t)
	reg := registry.New(16)
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	engine := advisor.New(reg)
	engine.SetObserver(&study.Calibrator{
		Source:  "x",
		Publish: func(s *registry.Snapshot, _ uint64) error { return reg.Publish(s) },
	})
	srv := newServer(engine)
	srv.startCalibration(4, t.Logf)
	t.Cleanup(srv.stopCalibration)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	bad := []advisor.Observation{{Arch: "serial", Renderer: "volume", RenderSeconds: -1}}
	if code := postJSON(t, ts, "/v1/observations", bad, nil); code != http.StatusBadRequest {
		t.Errorf("invalid observation status %d", code)
	}
	// A single (non-array) observation object is accepted too.
	one := advisor.Observation{
		Arch: "serial", Renderer: "volume",
		Inputs:        core.Inputs{O: 1000, AP: 5000, SPR: 100, CS: 10, Pixels: 20000, AvgAP: 5000, Tasks: 1},
		RenderSeconds: 0.01,
	}
	if code := postJSON(t, ts, "/v1/observations", one, nil); code != http.StatusAccepted {
		t.Errorf("single observation status %d", code)
	}

	// Calibration disabled: the endpoint explains itself with a 503.
	plain := httptest.NewServer(newServer(advisor.New(reg)).handler())
	defer plain.Close()
	r, err := plain.Client().Post(plain.URL+"/v1/observations", "application/json", bytes.NewReader([]byte("[]")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("disabled observations status %d", r.StatusCode)
	}
}

// TestUnstructuredVolumeServedEndToEnd is the scenario seam's acceptance
// test: the volume-unstructured backend — registered only through the
// scenario registry, never special-cased in study, repro, or advisor
// code — flows plan -> measurement -> fit -> registry snapshot ->
// /v1/predict, and the served numbers match the in-memory fit exactly.
func TestUnstructuredVolumeServedEndToEnd(t *testing.T) {
	ts, _, set, mp := testServer(t)
	m, ok := set.Models[core.Key("serial", scenario.VolumeUnstructured)]
	if !ok {
		t.Fatalf("no fitted model for %s; corpus groups: %d", scenario.VolumeUnstructured, len(set.Models))
	}
	req := advisor.PredictRequest{
		Arch: "serial", Renderer: string(scenario.VolumeUnstructured),
		N: 12, Tasks: 1, Width: 96,
	}
	var resp advisor.PredictResponse
	if code := postJSON(t, ts, "/v1/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	in := mp.Map(core.Config{N: 12, Tasks: 1, Width: 96, Height: 96, Renderer: scenario.VolumeUnstructured})
	if want := m.Predict(in); resp.RenderSeconds != want {
		t.Errorf("served render_seconds %v, in-memory fit predicts %v", resp.RenderSeconds, want)
	}
	if resp.PerImageSeconds <= 0 {
		t.Errorf("per_image_seconds = %v, want positive", resp.PerImageSeconds)
	}
	// The snapshot served by /v1/models names the backend too.
	var models modelsBody
	r, err := ts.Client().Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if err := json.NewDecoder(r.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range models.Models {
		if d.Renderer == string(scenario.VolumeUnstructured) {
			found = true
		}
	}
	if !found {
		t.Error("/v1/models does not list the volume-unstructured model")
	}
}

// TestPredictRejectsUnregisteredRenderer: a renderer with no registered
// model spec answers a clear 400 naming the registered alternatives; a
// registered spec with no fitted model in the snapshot answers 404.
func TestPredictRejectsUnregisteredRenderer(t *testing.T) {
	ts, _, _, _ := testServer(t)
	var eb errorBody
	code := postJSON(t, ts, "/v1/predict",
		advisor.PredictRequest{Arch: "serial", Renderer: "teapot", N: 12, Tasks: 1, Width: 64}, &eb)
	if code != http.StatusBadRequest {
		t.Errorf("unregistered renderer status %d, want 400", code)
	}
	if !strings.Contains(eb.Error, "teapot") || !strings.Contains(eb.Error, string(core.RayTrace)) {
		t.Errorf("error does not name the bad renderer and the registered ones: %q", eb.Error)
	}
	// rasterizer has a registered spec but no model in this snapshot.
	code = postJSON(t, ts, "/v1/predict",
		advisor.PredictRequest{Arch: "serial", Renderer: string(core.Raster), N: 12, Tasks: 1, Width: 64}, &eb)
	if code != http.StatusNotFound {
		t.Errorf("model-less renderer status %d, want 404", code)
	}
	// The compositing pseudo-renderer has a spec but is never served
	// per-architecture: 400, not a misleading "no model" 404.
	code = postJSON(t, ts, "/v1/predict",
		advisor.PredictRequest{Arch: "serial", Renderer: string(core.Compositing), N: 12, Tasks: 1, Width: 64}, &eb)
	if code != http.StatusBadRequest {
		t.Errorf("compositing predict status %d, want 400", code)
	}
	// Feasibility applies the same validation as predict.
	code = postJSON(t, ts, "/v1/feasibility", advisor.FeasibilityRequest{
		Arch: "serial", Renderer: "teapot", N: 12, BudgetSeconds: 10, Sizes: []int{64},
	}, &eb)
	if code != http.StatusBadRequest || !strings.Contains(eb.Error, "teapot") {
		t.Errorf("feasibility unknown renderer: status %d, error %q", code, eb.Error)
	}
	// Observations for unregistered renderers are rejected up front too.
	if _, err := advisor.SamplesFromObservations([]advisor.Observation{
		{Arch: "serial", Renderer: "teapot", RenderSeconds: 0.1},
	}); err == nil || !strings.Contains(err.Error(), "teapot") {
		t.Errorf("unregistered observation renderer not rejected clearly: %v", err)
	}
}
