// Command advisord serves in situ feasibility answers over HTTP. It loads
// a registry snapshot — fitted performance models published by the study
// pipeline (repro export, or study.ExportModels) — and answers the
// paper's viability questions for many concurrent clients:
//
//	GET  /healthz           liveness, model count, registry generation
//	GET  /v1/models         registered models with fit diagnostics
//	POST /v1/predict        cost one configuration (or a JSON array: batch)
//	POST /v1/feasibility    images-per-budget curve ("X1 images in X2 s?")
//	POST /v1/max_triangles  largest geometry fitting a frame budget
//	POST /v1/observations   ingest measured samples; background refit +
//	                        atomic hot-reload (continuous calibration)
//	GET  /v1/metrics        per-operation latency + prediction cache stats
//	GET  /metrics           the same snapshot as Prometheus text exposition
//	POST /v1/reload         hot-reload the registry file
//
// With -debug-addr a second listener serves net/http/pprof.
//
// Usage:
//
//	advisord -registry repro_out/models.json [-addr :8080]
//	advisord -bootstrap [-registry models.json]   # measure-fit-serve
//	advisord -loadgen [-target URL] [-duration 10s] [-concurrency 8]
//
// With -bootstrap and no existing registry file, advisord runs a short
// measurement study on this machine, fits the models, writes the snapshot,
// and serves it — a single-command path from nothing to a live advisor.
//
// Unless -calibrate=false, POST /v1/observations accepts measured samples
// (e.g. streamed from a parallel study run); a background worker refits
// the models over the accumulated corpus, merges groups that cannot be
// refitted yet from the serving snapshot, publishes the result atomically
// (generation bump, visible in /v1/models and /v1/metrics), and rewrites
// the -registry file so the new models survive a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/registry"
	"insitu/internal/serve"
	"insitu/internal/study"
)

// pprofHandler builds an explicit pprof mux — the serving mux never
// exposes the profiler; it lives only on the separate -debug-addr
// listener, which deployments keep off the public network.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (empty = disabled)")
		regPath     = flag.String("registry", "", "registry snapshot JSON (from 'repro export')")
		cacheSize   = flag.Int("cache", 4096, "prediction LRU cache entries (0 disables)")
		bootstrap   = flag.Bool("bootstrap", false, "if the registry file is missing, run a short study and fit one")
		calibrate   = flag.Bool("calibrate", true, "accept POST /v1/observations and continuously refit the served models")
		refitEvery  = flag.Int("refit-every", 1, "observed samples between refits (raise to debounce refit + snapshot-rewrite cost under sustained ingestion)")
		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target      = flag.String("target", "", "loadgen: base URL of a running advisord (default: self-contained in-process server)")
		duration    = flag.Duration("duration", 10*time.Second, "loadgen: how long to sustain load")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent clients")
	)
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(*target, *regPath, *bootstrap, *cacheSize, *duration, *concurrency); err != nil {
			log.Fatal(err)
		}
		return
	}

	reg, err := openRegistry(*regPath, *bootstrap, *cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()
	log.Printf("registry: %d models (source %q, archs %v)", len(snap.Models), snap.Source, reg.Archs())

	engine := advisor.New(reg)
	web := newServer(engine)
	if *calibrate {
		engine.SetObserver(newCalibrator(reg, *regPath, *refitEvery))
		web.startCalibration(64, log.Printf)
		defer web.stopCalibration()
		log.Printf("continuous calibration enabled (POST /v1/observations)")
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("pprof debug server on %s", *debugAddr)
			log.Printf("pprof debug server exited: %v", http.ListenAndServe(*debugAddr, pprofHandler()))
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(log.Printf, web.handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until interrupted, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("advisord listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Printf("bye")
}

// newCalibrator builds the continuous-calibration loop around the serving
// registry: observed samples refit against the retained corpus every
// refitEvery samples, thin groups carry over from the currently served
// snapshot, publishes hot-reload the registry in place and (best effort)
// persist to the registry file so the refined models survive a restart.
func newCalibrator(reg *registry.Registry, regPath string, refitEvery int) *study.Calibrator {
	return &study.Calibrator{
		Source:     "advisord-observations",
		RefitEvery: refitEvery,
		// A sliding window bounds per-refit cost and process memory over
		// an arbitrarily long ingestion stream; 4096 samples is several
		// times the full study plan.
		MaxCorpus: 4096,
		Base: func() (*registry.Snapshot, uint64) {
			v, err := reg.View()
			if err != nil {
				return nil, reg.Generation()
			}
			return v.Snapshot(), v.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			// Conditional on the generation the merge read: a concurrent
			// POST /v1/reload must not be silently overwritten (the
			// calibrator re-merges and retries on ErrStale).
			if err := reg.PublishIf(s, baseGen); err != nil {
				return err
			}
			if regPath != "" {
				if err := s.WriteFile(regPath); err != nil {
					// The models are already serving; a persist failure
					// must not unpublish them.
					log.Printf("calibrate: persisting %s: %v", regPath, err)
				}
			}
			return nil
		},
	}
}

// openRegistry loads the snapshot file through the shared serving-path
// helper, bootstrapping one from a short on-machine study when asked
// and the file is absent.
func openRegistry(path string, bootstrap bool, cacheSize int) (*registry.Registry, error) {
	return serve.OpenRegistry(path, bootstrap, cacheSize, log.Printf)
}
