// Command advisord serves in situ feasibility answers over HTTP. It loads
// a registry snapshot — fitted performance models published by the study
// pipeline (repro export, or study.ExportModels) — and answers the
// paper's viability questions for many concurrent clients:
//
//	GET  /healthz           liveness, model count, registry generation
//	GET  /v1/models         registered models with fit diagnostics
//	POST /v1/predict        cost one configuration (or a JSON array: batch)
//	POST /v1/feasibility    images-per-budget curve ("X1 images in X2 s?")
//	POST /v1/max_triangles  largest geometry fitting a frame budget
//	GET  /v1/metrics        per-operation latency + prediction cache stats
//	POST /v1/reload         hot-reload the registry file
//
// Usage:
//
//	advisord -registry repro_out/models.json [-addr :8080]
//	advisord -bootstrap [-registry models.json]   # measure-fit-serve
//	advisord -loadgen [-target URL] [-duration 10s] [-concurrency 8]
//
// With -bootstrap and no existing registry file, advisord runs a short
// measurement study on this machine, fits the models, writes the snapshot,
// and serves it — a single-command path from nothing to a live advisor.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/registry"
	"insitu/internal/study"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		regPath     = flag.String("registry", "", "registry snapshot JSON (from 'repro export')")
		cacheSize   = flag.Int("cache", 4096, "prediction LRU cache entries (0 disables)")
		bootstrap   = flag.Bool("bootstrap", false, "if the registry file is missing, run a short study and fit one")
		loadgen     = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target      = flag.String("target", "", "loadgen: base URL of a running advisord (default: self-contained in-process server)")
		duration    = flag.Duration("duration", 10*time.Second, "loadgen: how long to sustain load")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent clients")
	)
	flag.Parse()

	if *loadgen {
		if err := runLoadgen(*target, *regPath, *bootstrap, *cacheSize, *duration, *concurrency); err != nil {
			log.Fatal(err)
		}
		return
	}

	reg, err := openRegistry(*regPath, *bootstrap, *cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	snap := reg.Snapshot()
	log.Printf("registry: %d models (source %q, archs %v)", len(snap.Models), snap.Source, reg.Archs())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(log.Printf, newServer(advisor.New(reg)).handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until interrupted, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("advisord listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Printf("bye")
}

// openRegistry loads the snapshot file, bootstrapping one from a short
// on-machine study when asked and the file is absent.
func openRegistry(path string, bootstrap bool, cacheSize int) (*registry.Registry, error) {
	reg := registry.New(cacheSize)
	if path != "" {
		err := reg.LoadFile(path)
		if err == nil {
			return reg, nil
		}
		if !bootstrap || !os.IsNotExist(err) {
			return nil, fmt.Errorf("advisord: loading registry: %w", err)
		}
	}
	if !bootstrap {
		return nil, fmt.Errorf("advisord: -registry is required (or pass -bootstrap)")
	}
	log.Printf("bootstrapping: running a short measurement study...")
	plan := study.Plan(true)
	rows, err := study.Run(plan, os.Stderr)
	if err != nil {
		return nil, fmt.Errorf("advisord: bootstrap study: %w", err)
	}
	snap, err := study.FitSnapshot(rows, "advisord-bootstrap")
	if err != nil {
		return nil, fmt.Errorf("advisord: bootstrap fit: %w", err)
	}
	if path != "" {
		if err := snap.WriteFile(path); err != nil {
			return nil, err
		}
		log.Printf("bootstrap registry written to %s", path)
		if err := reg.LoadFile(path); err != nil {
			return nil, err
		}
		return reg, nil
	}
	if err := reg.Load(snap); err != nil {
		return nil, err
	}
	return reg, nil
}
