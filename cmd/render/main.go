// Command render rasterizes, ray traces, or volume renders a synthetic
// dataset to a PNG — a fast way to exercise any renderer on any dataset
// and device profile.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
)

func main() {
	dataset := flag.String("dataset", "rm", "dataset: "+strings.Join(datasetNames(), ", "))
	n := flag.Int("n", 48, "grid points per axis")
	rendererName := flag.String("renderer", "raytracer", "raytracer, rasterizer, or volume")
	size := flag.Int("size", 768, "image size (square)")
	dev := flag.String("device", "cpu", "device profile: "+strings.Join(device.ProfileNames(), ", "))
	zoom := flag.Float64("zoom", 1.4, "camera zoom (<1 zoomed out, >1 close)")
	azimuth := flag.Float64("azimuth", 30, "camera azimuth in degrees")
	out := flag.String("out", "render.png", "output PNG")
	workload := flag.Int("workload", 3, "ray tracing workload (1, 2, or 3)")
	flag.Parse()

	ds, err := synthdata.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	d, err := device.Profile(*dev)
	if err != nil {
		log.Fatal(err)
	}
	grid := synthdata.Grid(ds.FieldName, ds.Func, *n, *n, *n, synthdata.UnitBounds())

	switch *rendererName {
	case "raytracer", "rasterizer":
		iso, err := grid.Isosurface(d, ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			log.Fatal(err)
		}
		cam := render.OrbitCamera(iso.Bounds(), *azimuth, 20, *zoom)
		if *rendererName == "raytracer" {
			img, stats, err := raytrace.New(d, iso).Render(raytrace.Options{
				Width: *size, Height: *size, Camera: cam,
				Workload:   raytrace.Workload(*workload),
				Compaction: true, Supersample: *workload == 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%d triangles, %s, %d rays\n", iso.NumTriangles(), stats.Phases.Total().Round(1e6), stats.TotalRays)
			fail(img.SavePNG(*out))
		} else {
			img, stats, err := raster.New(d, iso).Render(raster.Options{
				Width: *size, Height: *size, Camera: cam,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%d triangles (%d visible), %s\n",
				stats.Objects, stats.VisibleObjects, stats.Phases.Total().Round(1e6))
			fail(img.SavePNG(*out))
		}
	case "volume":
		vr, err := volume.NewStructured(d, grid, ds.FieldName)
		if err != nil {
			log.Fatal(err)
		}
		cam := render.OrbitCamera(grid.Bounds(), *azimuth, 20, *zoom)
		img, stats, err := vr.Render(volume.StructuredOptions{
			Width: *size, Height: *size, Camera: cam, Samples: 400,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d cells, %s, SPR %.1f\n", stats.Objects, stats.Phases.Total().Round(1e6), stats.SPR())
		fail(img.SavePNG(*out))
	default:
		log.Fatalf("unknown renderer %q", *rendererName)
	}
	fmt.Println("wrote", *out)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func datasetNames() []string {
	var names []string
	for _, d := range synthdata.Datasets() {
		names = append(names, d.Name)
	}
	return names
}
