// Command render renders a synthetic dataset to a PNG through the
// scenario backend registry — the same dispatch path the study, the
// repro tables, and the serving binaries use, so any registered backend
// (including ones added after this tool was written) is one -renderer
// flag away.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/scenario"
)

func main() {
	dataset := flag.String("dataset", "rm", "dataset: "+strings.Join(datasetNames(), ", "))
	n := flag.Int("n", 48, "grid points per axis")
	rendererName := flag.String("renderer", string(core.RayTrace),
		"scenario backend: "+backendNames())
	size := flag.Int("size", 768, "image size (square)")
	dev := flag.String("device", "cpu", "device profile: "+strings.Join(device.ProfileNames(), ", "))
	zoom := flag.Float64("zoom", 1.4, "camera zoom (<1 zoomed out, >1 close)")
	azimuth := flag.Float64("azimuth", 30, "camera azimuth in degrees")
	out := flag.String("out", "render.png", "output PNG")
	workload := flag.Int("workload", 3, "ray tracing workload (1, 2, or 3)")
	samples := flag.Int("samples", 400, "volume sample budget along the diagonal (0 = renderer default)")
	flag.Parse()

	ds, err := synthdata.ByName(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	d, err := device.Profile(*dev)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	backend, err := scenario.Lookup(core.Renderer(*rendererName))
	if err != nil {
		log.Fatal(err)
	}
	grid := synthdata.Grid(ds.FieldName, ds.Func, *n, *n, *n, synthdata.UnitBounds())

	// One scene drives every backend. Surface techniques plot the
	// dataset's isosurface (not the block's external faces, which would
	// just be the bounding box); volume techniques consume the grid.
	sc, err := scenario.SceneFromGrid(d, grid, ds.FieldName, render.Camera{}, *size, *size)
	if err != nil {
		log.Fatal(err)
	}
	bounds := grid.Bounds()
	if spec, ok := core.LookupRenderer(backend.Name()); ok && spec.Surface {
		iso, err := grid.Isosurface(d, ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
		if err != nil {
			log.Fatal(err)
		}
		sc.SetSurface(iso)
		bounds = iso.Bounds()
	}
	sc.Camera = render.OrbitCamera(bounds, *azimuth, 20, *zoom)
	sc.RTWorkload = *workload
	sc.SamplesZ = *samples

	runner, err := backend.Prepare(sc)
	if err != nil {
		log.Fatal(err)
	}
	in := core.Inputs{Pixels: float64(*size * *size), Tasks: 1}
	elapsed, img, err := runner.RenderFrame(&in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f objects, %.0f active pixels, %s",
		backend.Name(), in.O, in.AP, elapsed.Round(time.Millisecond))
	if b := runner.BuildSeconds(); b > 0 {
		fmt.Printf(" (+%.0fms build)", b*1e3)
	}
	fmt.Println()
	if err := img.SavePNG(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", *out)
}

func datasetNames() []string {
	var names []string
	for _, d := range synthdata.Datasets() {
		names = append(names, d.Name)
	}
	return names
}

func backendNames() string {
	var names []string
	for _, r := range scenario.Names() {
		names = append(names, string(r))
	}
	return strings.Join(names, ", ")
}
