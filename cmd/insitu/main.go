// Command insitu runs a proxy simulation with in situ rendering: the
// Strawman batch workflow from the command line, optionally distributed
// over simulated MPI tasks and streamed to a browser.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"insitu/internal/comm"
	"insitu/internal/conduit"
	"insitu/internal/sim"
	"insitu/internal/strawman"
)

func main() {
	proxy := flag.String("sim", "cloverleaf", "proxy: cloverleaf, kripke, or lulesh")
	steps := flag.Int("steps", 5, "simulation cycles")
	every := flag.Int("every", 1, "render every k-th cycle")
	n := flag.Int("n", 24, "grid points per axis per task")
	tasks := flag.Int("tasks", 1, "simulated MPI tasks")
	renderer := flag.String("renderer", "raytracer", "raytracer, rasterizer, or volume")
	size := flag.Int("size", 512, "image size")
	dev := flag.String("device", "cpu", "device profile")
	out := flag.String("out", "insitu_out", "output directory")
	web := flag.Int("web", 0, "stream images on this local port (0 = off)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	world := comm.NewWorld(*tasks)
	err := world.Run(func(c *comm.Comm) error {
		s, err := sim.New(*proxy, *n, *tasks, c.Rank())
		if err != nil {
			return err
		}
		opts := conduit.NewNode()
		opts.Set("device", *dev)
		if *tasks > 1 {
			opts.SetExternal("mpi_comm", c)
		}
		if *web > 0 {
			opts.Set("web/port", *web)
		}
		sman, err := strawman.Open(opts)
		if err != nil {
			return err
		}
		defer sman.Close()

		data := conduit.NewNode()
		for cyc := 0; cyc < *steps; cyc++ {
			s.Step()
			if s.Cycle()%*every != 0 {
				continue
			}
			s.Publish(data)
			if err := sman.Publish(data); err != nil {
				return err
			}
			actions := conduit.NewNode()
			add := actions.Append()
			add.Set("action", "add_plot")
			add.Set("var", s.PrimaryField())
			add.Set("renderer", *renderer)
			actions.Append().Set("action", "draw_plots")
			save := actions.Append()
			save.Set("action", "save_image")
			save.Set("fileName", filepath.Join(*out, fmt.Sprintf("%s_%04d", *proxy, s.Cycle())))
			save.Set("width", *size)
			save.Set("height", *size)
			if err := sman.Execute(actions); err != nil {
				return err
			}
			if c.Rank() == 0 {
				fmt.Printf("cycle %4d  t=%.5f  vis=%.3fs\n",
					s.Cycle(), s.Time(), sman.LastVisTime.Seconds())
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
