package main

import (
	"fmt"
	"time"

	"insitu/internal/baseline"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
	"insitu/internal/scenario"
)

// studyDataset is a named surface scene at a given grid resolution,
// standing in for the paper's RM / LT / Seismic / graphics models.
type studyDataset struct {
	label string
	name  string
	n     int
}

func surfaceDatasets(short bool) []studyDataset {
	if short {
		return []studyDataset{
			{"RM small", "rm", 14},
			{"LT", "lt", 14},
			{"Nek", "nek", 14},
		}
	}
	return []studyDataset{
		{"RM large", "rm", 32},
		{"RM medium", "rm", 24},
		{"RM small", "rm", 18},
		{"LT", "lt", 24},
		{"Seismic", "seismic", 26},
		{"Enzo", "enzo", 24},
		{"Nek", "nek", 24},
	}
}

func buildSurface(ds studyDataset) (*mesh.TriangleMesh, error) {
	d, err := synthdata.ByName(ds.name)
	if err != nil {
		return nil, err
	}
	g := synthdata.Grid(d.FieldName, d.Func, ds.n, ds.n, ds.n, synthdata.UnitBounds())
	return g.Isosurface(device.CPU(), d.FieldName, d.Isovalue, mesh.IsoOptions{})
}

func archList() []string { return []string{"serial", "cpu", "gpu", "mic"} }

func imageSize(short bool) int {
	if short {
		return 128
	}
	return 256
}

// fps times repeated renders (first discarded) and returns frames/sec.
func fps(renderFn func() error, frames int) (float64, error) {
	if err := renderFn(); err != nil { // warm-up
		return 0, err
	}
	start := time.Now()
	for i := 0; i < frames; i++ {
		if err := renderFn(); err != nil {
			return 0, err
		}
	}
	return float64(frames) / time.Since(start).Seconds(), nil
}

func init() {
	register("table1", "ray tracing frames/s with shading (WORKLOAD2), arch x dataset", func(e *env) error {
		return rtFPSTable(e, raytrace.Workload2, false)
	})
	register("table2", "ray tracing frames/s with the full algorithm (WORKLOAD3)", func(e *env) error {
		return rtFPSTable(e, raytrace.Workload3, true)
	})
	register("table3", "DPP ray tracer vs OptiX-analogue (queue+packet) Mrays/s", func(e *env) error {
		return vsTunedTable(e, "queuert")
	})
	register("table4", "DPP ray tracer vs Embree-analogue (fused SAH) Mrays/s", func(e *env) error {
		return vsTunedTable(e, "fastrt")
	})
	register("table5", "scalar vs packet backend on the MIC profile (OpenMP vs ISPC)", table5Backends)
	register("fig4", "unstructured VR phase times vs pass count (cpu profile)", func(e *env) error {
		return volumePhaseFigure(e, "cpu")
	})
	register("fig5", "unstructured VR phase times vs pass count (gpu profile)", func(e *env) error {
		return volumePhaseFigure(e, "gpu")
	})
	register("fig6", "DPP volume renderer vs HAVS-analogue", fig6HAVS)
	register("fig7", "DPP volume renderer vs connectivity ray-caster (Bunyk)", fig7Bunyk)
	register("table6", "VR kernel time / state / occupancy (gpu profile, 4 passes)", table6Kernels)
	register("table7", "VR phase time and throughput (IPC analogue), cpu vs gpu profile", table7IPC)
	register("table8", "VR strong scaling over worker counts (raw and total time)", table8Scaling)
	register("table9", "DPP-VR vs VisIt-analogue per-phase times (serial)", table9VisIt)
}

func rtFPSTable(e *env, wl raytrace.Workload, fullOnly bool) error {
	frames := 4
	if e.short {
		frames = 2
	}
	archs := archList()
	if fullOnly {
		archs = []string{"cpu", "gpu"} // the paper's Table 2 uses two machines
	}
	size := imageSize(e.short)
	printHeader(append([]string{"dataset", "tris"}, archs...)...)
	for _, ds := range surfaceDatasets(e.short) {
		m, err := buildSurface(ds)
		if err != nil {
			return err
		}
		cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
		row := cell(ds.label) + cell(m.NumTriangles())
		for _, arch := range archs {
			dev, err := device.Profile(arch)
			if err != nil {
				return err
			}
			var renderOnce func() error
			if wl == raytrace.Workload2 {
				// The standard shaded workload is exactly the ray tracing
				// backend's canonical frame, so this table measures through
				// the same scenario path the study measures.
				backend, err := scenario.Lookup(core.RayTrace)
				if err != nil {
					return err
				}
				runner, err := backend.Prepare(scenario.SceneFromSurface(dev, m, cam, size, size))
				if err != nil {
					return err
				}
				var in core.Inputs
				renderOnce = func() error {
					_, _, err := runner.RenderFrame(&in)
					return err
				}
			} else {
				// The full-algorithm workload exercises renderer-internal
				// variants (compaction, supersampling) beyond the backend's
				// canonical frame.
				rdr := raytrace.New(dev, m)
				opts := raytrace.Options{
					Width: size, Height: size,
					Camera: cam, Workload: wl,
					Compaction: true, Supersample: true,
				}
				renderOnce = func() error {
					_, _, err := rdr.Render(opts)
					return err
				}
			}
			rate, err := fps(renderOnce, frames)
			if err != nil {
				return err
			}
			row += cell(fmt.Sprintf("%.1f", rate))
		}
		fmt.Println(row)
	}
	return nil
}

func vsTunedTable(e *env, tuned string) error {
	w, h := imageSize(e.short)*2, imageSize(e.short)*2 // WORKLOAD1 uses bigger images
	printHeader("dataset", "tris", "dpp Mray/s", tuned+" Mray/s", "ratio")
	for _, ds := range surfaceDatasets(e.short) {
		m, err := buildSurface(ds)
		if err != nil {
			return err
		}
		cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
		dev, err := device.Profile("cpu")
		if err != nil {
			return err
		}
		rdr := raytrace.New(dev, m)
		opts := raytrace.Options{Width: w, Height: h, Camera: cam, Workload: raytrace.Workload1}
		if _, _, err := rdr.Render(opts); err != nil { // warm-up
			return err
		}
		_, st, err := rdr.Render(opts)
		if err != nil {
			return err
		}
		dppRate := st.MRaysPerSec()

		var tunedRate float64
		switch tuned {
		case "fastrt":
			f := baseline.NewFastRT(m, dev.Workers)
			f.Trace(cam, w, h)
			tunedRate = f.Trace(cam, w, h).MRaysPerSec()
		case "queuert":
			q := baseline.NewQueueRT(m, dev.Workers)
			q.Trace(cam, w, h)
			tunedRate = q.Trace(cam, w, h).MRaysPerSec()
		}
		fmt.Println(cell(ds.label) + cell(m.NumTriangles()) +
			cell(fmt.Sprintf("%.2f", dppRate)) + cell(fmt.Sprintf("%.2f", tunedRate)) +
			cell(fmt.Sprintf("%.2fx", tunedRate/dppRate)))
	}
	return nil
}

func table5Backends(e *env) error {
	w, h := imageSize(e.short)*2, imageSize(e.short)*2
	dev, err := device.Profile("mic")
	if err != nil {
		return err
	}
	printHeader("dataset", "scalar Mray/s", "packet Mray/s", "speedup")
	for _, ds := range surfaceDatasets(e.short) {
		m, err := buildSurface(ds)
		if err != nil {
			return err
		}
		cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
		rdr := raytrace.New(dev, m)
		rate := func(packets bool) (float64, error) {
			opts := raytrace.Options{Width: w, Height: h, Camera: cam,
				Workload: raytrace.Workload1, UsePackets: packets}
			if _, _, err := rdr.Render(opts); err != nil {
				return 0, err
			}
			_, st, err := rdr.Render(opts)
			if err != nil {
				return 0, err
			}
			return st.MRaysPerSec(), nil
		}
		scalar, err := rate(false)
		if err != nil {
			return err
		}
		packet, err := rate(true)
		if err != nil {
			return err
		}
		fmt.Println(cell(ds.label) + cell(fmt.Sprintf("%.2f", scalar)) +
			cell(fmt.Sprintf("%.2f", packet)) + cell(fmt.Sprintf("%.2fx", packet/scalar)))
	}
	return nil
}

// tetScene builds a tetrahedralized volume dataset.
func tetScene(name string, n int) (*mesh.TetMesh, error) {
	d, err := synthdata.ByName(name)
	if err != nil {
		return nil, err
	}
	g := synthdata.Grid(d.FieldName, d.Func, n, n, n, synthdata.UnitBounds())
	return g.Tetrahedralize(d.FieldName)
}

func volumeDatasets(short bool) []studyDataset {
	if short {
		return []studyDataset{{"Enzo-small", "enzo", 10}, {"Nek", "nek", 10}}
	}
	return []studyDataset{
		{"Enzo-small", "enzo", 12},
		{"Enzo-medium", "enzo", 18},
		{"Nek", "nek", 16},
		{"Enzo-large", "enzo", 24},
	}
}

func volumePhaseFigure(e *env, arch string) error {
	dev, err := device.Profile(arch)
	if err != nil {
		return err
	}
	size := imageSize(e.short)
	phases := []string{"init", "passselect", "screenspace", "sampling", "composite"}
	printHeader(append([]string{"dataset", "camera", "passes"}, phases...)...)
	for _, ds := range volumeDatasets(e.short) {
		tm, err := tetScene(ds.name, ds.n)
		if err != nil {
			return err
		}
		for camName, zoom := range map[string]float64{"far": 0.8, "close": 1.8} {
			cam := render.OrbitCamera(tm.Bounds(), 30, 20, zoom)
			for _, passes := range []int{1, 4, 8, 16} {
				rdr := volume.NewUnstructured(dev, tm)
				_, st, err := rdr.Render(volume.UnstructuredOptions{
					Width: size, Height: size, Camera: cam,
					SamplesZ: 160, Passes: passes,
				})
				if err != nil {
					return err
				}
				row := cell(ds.label) + cell(camName) + cell(passes)
				for _, p := range phases {
					row += cell(fmt.Sprintf("%.4fs", st.Phases.Get(p).Seconds()))
				}
				fmt.Println(row)
			}
		}
	}
	return nil
}

func fig6HAVS(e *env) error {
	return volumeComparison(e, "havs", func(tm *mesh.TetMesh, cam render.Camera, size int) (time.Duration, error) {
		hv := &baseline.HAVS{Mesh: tm, Dev: device.CPU()}
		_, st, err := hv.Render(cam, size, size, 160)
		return st.Total, err
	})
}

func fig7Bunyk(e *env) error {
	cache := map[*mesh.TetMesh]*baseline.Bunyk{}
	return volumeComparison(e, "ray-caster", func(tm *mesh.TetMesh, cam render.Camera, size int) (time.Duration, error) {
		bk, ok := cache[tm]
		if !ok {
			bk = baseline.NewBunyk(tm)
			cache[tm] = bk
			fmt.Printf("  (connectivity preprocess for %d tets: %.3fs, excluded as in the paper)\n",
				tm.NumTets(), bk.PreprocessTime.Seconds())
		}
		_, st, err := bk.Render(cam, size, size, 160)
		return st.Total, err
	})
}

func volumeComparison(e *env, other string, run func(*mesh.TetMesh, render.Camera, int) (time.Duration, error)) error {
	size := imageSize(e.short) / 2 // comparators include serial paths
	backend, err := scenario.Lookup(scenario.VolumeUnstructured)
	if err != nil {
		return err
	}
	printHeader("dataset", "camera", "dpp-vr", other, "ratio")
	for _, ds := range volumeDatasets(e.short) {
		tm, err := tetScene(ds.name, ds.n)
		if err != nil {
			return err
		}
		for _, camSpec := range []struct {
			name string
			zoom float64
		}{{"far", 0.8}, {"close", 1.8}} {
			cam := render.OrbitCamera(tm.Bounds(), 30, 20, camSpec.zoom)
			// The DPP side renders through the scenario backend — the same
			// path the study measures — at the comparison's sampling density.
			sc := scenario.SceneFromTets(device.CPU(), tm, cam, size, size)
			sc.SamplesZ = 160
			runner, err := backend.Prepare(sc)
			if err != nil {
				return err
			}
			var in core.Inputs
			dpp, _, err := runner.RenderFrame(&in)
			if err != nil {
				return err
			}
			otherT, err := run(tm, cam, size)
			if err != nil {
				return err
			}
			fmt.Println(cell(ds.label) + cell(camSpec.name) +
				cell(fmt.Sprintf("%.3fs", dpp.Seconds())) +
				cell(fmt.Sprintf("%.3fs", otherT.Seconds())) +
				cell(fmt.Sprintf("%.2fx", otherT.Seconds()/dpp.Seconds())))
		}
	}
	return nil
}

func table6Kernels(e *env) error {
	dev, err := device.Profile("gpu")
	if err != nil {
		return err
	}
	n := 18
	if e.short {
		n = 12
	}
	tm, err := tetScene("enzo", n)
	if err != nil {
		return err
	}
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.8)
	size := imageSize(e.short)
	// Instrument each phase separately via device stats around a 4-pass
	// render. State size is the kernel working-set struct size, the
	// substitute for registers-per-thread.
	dev.Stats = &device.Stats{}
	rdr := volume.NewUnstructured(dev, tm)
	start := time.Now()
	_, st, err := rdr.Render(volume.UnstructuredOptions{
		Width: size, Height: size, Camera: cam, SamplesZ: 160, Passes: 4,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	occ := dev.Stats.Occupancy(wall, dev.Workers)
	printHeader("kernel", "time", "state B", "occupancy")
	stateBytes := map[string]int{"screenspace": 96, "sampling": 152, "composite": 72}
	for _, phase := range []string{"screenspace", "sampling", "composite"} {
		fmt.Println(cell(phase) +
			cell(fmt.Sprintf("%.4fs", st.Phases.Get(phase).Seconds())) +
			cell(stateBytes[phase]) +
			cell(fmt.Sprintf("%.0f%%", occ*100)))
	}
	fmt.Printf("(pass selection omitted: composed of multiple primitives, as in the paper)\n")
	return nil
}

func table7IPC(e *env) error {
	n := 18
	if e.short {
		n = 12
	}
	tm, err := tetScene("enzo", n)
	if err != nil {
		return err
	}
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.8)
	size := imageSize(e.short)
	printHeader("phase", "cpu time", "cpu items/us", "gpu time", "gpu items/us")
	type result struct {
		times map[string]float64
		thru  float64
	}
	results := map[string]result{}
	for _, arch := range []string{"cpu", "gpu"} {
		dev, err := device.Profile(arch)
		if err != nil {
			return err
		}
		dev.Stats = &device.Stats{}
		rdr := volume.NewUnstructured(dev, tm)
		_, st, err := rdr.Render(volume.UnstructuredOptions{
			Width: size, Height: size, Camera: cam, SamplesZ: 160, Passes: 4,
		})
		if err != nil {
			return err
		}
		times := map[string]float64{}
		for _, p := range []string{"passselect", "screenspace", "sampling", "composite"} {
			times[p] = st.Phases.Get(p).Seconds()
		}
		results[arch] = result{times: times, thru: dev.Stats.Throughput()}
	}
	for _, p := range []string{"passselect", "screenspace", "sampling", "composite"} {
		fmt.Println(cell(p) +
			cell(fmt.Sprintf("%.4fs", results["cpu"].times[p])) +
			cell(fmt.Sprintf("%.1f", results["cpu"].thru)) +
			cell(fmt.Sprintf("%.4fs", results["gpu"].times[p])) +
			cell(fmt.Sprintf("%.1f", results["gpu"].thru)))
	}
	return nil
}

func table8Scaling(e *env) error {
	n := 20
	if e.short {
		n = 12
	}
	tm, err := tetScene("enzo", n)
	if err != nil {
		return err
	}
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.8)
	size := imageSize(e.short)
	workers := []int{1, 2, 4, 8}
	printHeader("workers", "raw time", "total time")
	for _, w := range workers {
		dev := device.New(fmt.Sprintf("w%d", w), w)
		rdr := volume.NewUnstructured(dev, tm)
		opts := volume.UnstructuredOptions{Width: size, Height: size, Camera: cam, SamplesZ: 160}
		if _, _, err := rdr.Render(opts); err != nil {
			return err
		}
		start := time.Now()
		if _, _, err := rdr.Render(opts); err != nil {
			return err
		}
		raw := time.Since(start).Seconds()
		fmt.Println(cell(w) + cell(fmt.Sprintf("%.3fs", raw)) +
			cell(fmt.Sprintf("%.3fs", raw*float64(w))))
	}
	fmt.Println("(total time = raw x workers; flat total time is perfect scaling)")
	return nil
}

func table9VisIt(e *env) error {
	size := imageSize(e.short) / 2
	printHeader("data/view", "sw", "SS", "S", "C", "TOT")
	for _, ds := range volumeDatasets(e.short) {
		tm, err := tetScene(ds.name, ds.n)
		if err != nil {
			return err
		}
		for _, camSpec := range []struct {
			name string
			zoom float64
		}{{"far", 0.8}, {"close", 1.8}} {
			cam := render.OrbitCamera(tm.Bounds(), 30, 20, camSpec.zoom)
			label := ds.label + "/" + camSpec.name

			vv := &baseline.VisItVR{Mesh: tm}
			_, vst, err := vv.Render(cam, size, size, 160)
			if err != nil {
				return err
			}
			fmt.Println(cell(label) + cell("VisIt") +
				cell(fmt.Sprintf("%.3f", vst.ScreenSpace.Seconds())) +
				cell(fmt.Sprintf("%.3f", vst.Sampling.Seconds())) +
				cell(fmt.Sprintf("%.3f", vst.Composite.Seconds())) +
				cell(fmt.Sprintf("%.3f", vst.Total.Seconds())))

			rdr := volume.NewUnstructured(device.Serial(), tm)
			_, st, err := rdr.Render(volume.UnstructuredOptions{
				Width: size, Height: size, Camera: cam, SamplesZ: 160,
			})
			if err != nil {
				return err
			}
			ss := st.Phases.Get("init") + st.Phases.Get("passselect") + st.Phases.Get("screenspace")
			fmt.Println(cell(label) + cell("DPP-VR") +
				cell(fmt.Sprintf("%.3f", ss.Seconds())) +
				cell(fmt.Sprintf("%.3f", st.Phases.Get("sampling").Seconds())) +
				cell(fmt.Sprintf("%.3f", st.Phases.Get("composite").Seconds())) +
				cell(fmt.Sprintf("%.3f", st.Phases.Total().Seconds())))
		}
	}
	return nil
}
