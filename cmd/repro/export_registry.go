package main

import (
	"fmt"
	"path/filepath"

	"insitu/internal/study"
)

func init() {
	register("export", "publish fitted models as an advisor registry snapshot", exportRegistry)
}

// exportRegistry fits the study corpus and writes the versioned registry
// snapshot advisord serves from, closing the loop between the paper's
// one-shot reproduction and the online feasibility service.
func exportRegistry(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	path := filepath.Join(e.outDir, "models.json")
	snap, err := study.ExportModels(rows, "repro", path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d models", path, len(snap.Models))
	if snap.Compositing != nil {
		fmt.Printf(" + compositing")
	}
	fmt.Printf(", mapping fill=%.3f sprBase=%.1f)\n",
		snap.Mapping.FillFraction, snap.Mapping.SPRBase)
	fmt.Printf("serve it with: advisord -registry %s\n", path)
	return nil
}
