package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

func init() {
	registerStandalone("calibrate", "parallel study with continuous refit + registry publishes (not part of 'all': measures its own corpus)", calibrateRun)
}

// calibrateRun is the live measure→fit→serve pipeline in one process: the
// study plan runs on the parallel runner (-parallel workers), every
// completed row streams into a Calibrator, and each refit publishes a new
// registry generation plus an updated models.json — the file a running
// advisord can hot-reload, or the payload to POST to /v1/observations.
// Interrupting the run keeps every generation published so far.
func calibrateRun(e *env) error {
	plan := study.Plan(e.short)
	reg := registry.New(1024)
	path := filepath.Join(e.outDir, "models.json")
	// Refit roughly eight times over the run: often enough to watch the
	// models converge, rare enough that fitting stays a rounding error
	// next to measuring.
	cadence := len(plan) / 8
	if cadence < 4 {
		cadence = 4
	}
	calib := &study.Calibrator{
		Source:     "repro-calibrate",
		RefitEvery: cadence,
		Base: func() (*registry.Snapshot, uint64) {
			return reg.Snapshot(), reg.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			if err := reg.PublishIf(s, baseGen); err != nil {
				return err
			}
			return s.WriteFile(path)
		},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Printf("running %d configurations with %d worker(s), refit every %d samples...\n",
		len(plan), max(e.parallel, 1), cadence)
	logRow := study.LogProgress(os.Stdout)
	_, err := study.RunContext(ctx, plan, study.Options{
		Workers: e.parallel,
		Progress: func(p study.Progress) {
			logRow(p)
			corpus, published, _, oerr := calib.Observe([]core.Sample{p.Row.Sample})
			if oerr != nil {
				fmt.Fprintf(os.Stderr, "calibrate: %v\n", oerr)
				return
			}
			if published {
				fmt.Printf("          >>> generation %d published (corpus %d) -> %s\n",
					reg.Generation(), corpus, path)
			}
		},
	})
	if err != nil {
		return err
	}
	// Flush the trailing rows that did not reach the cadence.
	if published, reason, err := calib.Refit(); err != nil {
		return err
	} else if published {
		fmt.Printf("final refit: generation %d (corpus %d) -> %s\n",
			reg.Generation(), calib.CorpusSize(), path)
	} else {
		fmt.Printf("final refit not published: %s\n", reason)
	}
	snap := reg.Snapshot()
	if snap == nil {
		return fmt.Errorf("calibrate: no snapshot was ever published")
	}
	fmt.Printf("served registry: %d models", len(snap.Models))
	if snap.Compositing != nil {
		fmt.Printf(" + compositing")
	}
	fmt.Printf(", %d generations\nserve it with: advisord -registry %s\n", reg.Generation(), path)
	return nil
}
