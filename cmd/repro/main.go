// Command repro regenerates every table and figure of the paper's
// evaluation chapters on this machine. Each experiment is a subcommand;
// "all" runs the full set. Absolute numbers differ from the paper's
// testbeds (see DESIGN.md for the substitutions); the shapes — who wins,
// by what factor, where crossovers fall — are the reproduction targets.
//
// Usage:
//
//	repro [-short] [-out DIR] <experiment>...
//	repro list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one regenerable table or figure.
type experiment struct {
	name string
	desc string
	run  func(*env) error
	// standalone experiments measure their own corpus (or otherwise do
	// not belong in a tables-and-figures sweep) and are excluded from
	// "all"; they run only when named explicitly.
	standalone bool
}

// env carries shared state: flags plus the lazily built study corpus.
type env struct {
	short    bool
	outDir   string
	parallel int
	corpus   *corpusCache
}

var experiments []experiment

func register(name, desc string, run func(*env) error) {
	experiments = append(experiments, experiment{name: name, desc: desc, run: run})
}

func registerStandalone(name, desc string, run func(*env) error) {
	experiments = append(experiments, experiment{name: name, desc: desc, run: run, standalone: true})
}

func main() {
	short := flag.Bool("short", false, "run reduced-size experiments")
	out := flag.String("out", "repro_out", "output directory for images and CSVs")
	parallel := flag.Int("parallel", 1, "concurrent study configurations (1 reproduces the paper's serial measurement discipline)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e := &env{short: *short, outDir: *out, parallel: *parallel, corpus: &corpusCache{}}

	sort.Slice(experiments, func(i, j int) bool { return experiments[i].name < experiments[j].name })
	if args[0] == "list" {
		for _, ex := range experiments {
			fmt.Printf("  %-10s %s\n", ex.name, ex.desc)
		}
		return
	}
	want := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, ex := range experiments {
				// Standalone experiments (calibrate) measure their own
				// corpus; including them in "all" would re-run the whole
				// study on top of the shared corpus.
				if !ex.standalone {
					want[ex.name] = true
				}
			}
			continue
		}
		want[a] = true
	}
	known := map[string]bool{}
	for _, ex := range experiments {
		known[ex.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try: repro list)\n", name)
			os.Exit(2)
		}
	}
	for _, ex := range experiments {
		if !want[ex.name] {
			continue
		}
		fmt.Printf("\n================ %s — %s ================\n", ex.name, ex.desc)
		if err := ex.run(e); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", ex.name, err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `repro regenerates the paper's tables and figures.

usage: repro [-short] [-out DIR] <experiment>... | all | list

experiments:
`)
	sort.Slice(experiments, func(i, j int) bool { return experiments[i].name < experiments[j].name })
	for _, ex := range experiments {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", ex.name, ex.desc)
	}
}

// printHeader prints a fixed-width table header plus separator.
func printHeader(cols ...string) {
	var sb strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&sb, "%-14s", c)
	}
	fmt.Println(sb.String())
	fmt.Println(strings.Repeat("-", 14*len(cols)))
}

func cell(v any) string { return fmt.Sprintf("%-14v", v) }
