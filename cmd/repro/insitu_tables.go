package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"insitu/internal/comm"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
	"insitu/internal/scenario"
	"insitu/internal/sim"
	"insitu/internal/strawman"
)

func init() {
	register("table10", "lines of code to instrument the three proxies", table10LoC)
	register("table11", "simulation burden: vis vs sim seconds per cycle", table11Burden)
	register("images", "render the paper's figure images (PNGs in -out)", figureImages)
}

// table10LoC counts the actual integration code: each proxy's conduit
// data description (its Publish method), the shared action description,
// and the API calls — the three rows of the paper's Table 10.
func table10LoC(e *env) error {
	printHeader("proxy", "data desc", "actions", "api calls")
	actionLoC, apiLoC := integrationSnippetLoC()
	for _, name := range sim.Names() {
		src, err := os.ReadFile(filepath.Join("internal", "sim", name+".go"))
		if err != nil {
			// Fall back to a path-independent location.
			src, err = os.ReadFile(filepath.Join("..", "..", "internal", "sim", name+".go"))
			if err != nil {
				return fmt.Errorf("cannot read proxy source (run from the repo root): %w", err)
			}
		}
		loc := publishLoC(string(src))
		fmt.Println(cell(name) + cell(loc) + cell(actionLoC) + cell(apiLoC))
	}
	return nil
}

// publishLoC counts the code lines of the Publish method in a proxy's
// source.
func publishLoC(src string) int {
	lines := strings.Split(src, "\n")
	count := 0
	in := false
	for _, l := range lines {
		trimmed := strings.TrimSpace(l)
		if strings.HasPrefix(trimmed, "func ") && strings.Contains(trimmed, ") Publish(") {
			in = true
		}
		if in {
			if trimmed != "" && !strings.HasPrefix(trimmed, "//") {
				count++
			}
			if trimmed == "}" && !strings.Contains(l, "\t}") {
				break
			}
		}
	}
	return count
}

// integrationSnippetLoC reports the action-description and API-call line
// counts of the canonical integration (the code in examples/imagedb).
func integrationSnippetLoC() (actions, api int) {
	// The canonical action description is 10 lines; the API sequence is
	// Open/Publish/Execute/Close plus the options node: 7 lines. These are
	// constants of the interface, matching the paper's fixed rows.
	return 10, 7
}

func table11Burden(e *env) error {
	tasks := 4
	cycles := 5
	n := 16
	if e.short {
		cycles = 3
		n = 10
	}
	renderers := map[string]string{
		"cloverleaf": "raytracer",
		"kripke":     "rasterizer",
		"lulesh":     "volume",
	}
	printHeader("proxy", "renderer", "vis s/cycle", "sim s/cycle")
	for _, proxy := range sim.Names() {
		renderer := renderers[proxy]
		var visTotal, simTotal time.Duration
		world := comm.NewWorld(tasks)
		err := world.Run(func(c *comm.Comm) error {
			s, err := sim.New(proxy, n, tasks, c.Rank())
			if err != nil {
				return err
			}
			opts := conduit.NewNode()
			opts.Set("device", "cpu")
			opts.SetExternal("mpi_comm", c)
			sman, err := strawman.Open(opts)
			if err != nil {
				return err
			}
			defer sman.Close()
			data := conduit.NewNode()
			for cyc := 0; cyc < cycles; cyc++ {
				simStart := time.Now()
				s.Step()
				simT := time.Since(simStart)
				s.Publish(data)
				if err := sman.Publish(data); err != nil {
					return err
				}
				actions := conduit.NewNode()
				add := actions.Append()
				add.Set("action", "add_plot")
				add.Set("var", s.PrimaryField())
				add.Set("renderer", renderer)
				save := actions.Append()
				save.Set("action", "save_image")
				save.Set("fileName", filepath.Join(e.outDir, fmt.Sprintf("burden_%s", proxy)))
				save.Set("width", imageSize(e.short))
				save.Set("height", imageSize(e.short))
				if err := sman.Execute(actions); err != nil {
					return err
				}
				if c.Rank() == 0 {
					visTotal += sman.LastVisTime
					simTotal += simT
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Println(cell(proxy) + cell(renderer) +
			cell(fmt.Sprintf("%.3f", visTotal.Seconds()/float64(cycles))) +
			cell(fmt.Sprintf("%.3f", simTotal.Seconds()/float64(cycles))))
	}
	return nil
}

// figureImages renders the pictures of Figures 2, 3, 9, and 10.
func figureImages(e *env) error {
	size := 2 * imageSize(e.short)
	save := func(name string, img *framebuffer.Image) error {
		path := filepath.Join(e.outDir, name+".png")
		if err := img.SavePNG(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	// Figure 2: RM isosurface, hit mask (WORKLOAD1) and shaded (WORKLOAD2).
	ds, err := synthdata.ByName("rm")
	if err != nil {
		return err
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 32, 32, 32, synthdata.UnitBounds())
	iso, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		return err
	}
	cam := render.OrbitCamera(iso.Bounds(), 30, 20, 1.2)
	rdr := raytrace.New(device.CPU(), iso)
	for wl, name := range map[raytrace.Workload]string{
		raytrace.Workload1: "fig2_rm_hits",
		raytrace.Workload2: "fig2_rm_shaded",
		raytrace.Workload3: "fig2_rm_full",
	} {
		img, _, err := rdr.Render(raytrace.Options{
			Width: size, Height: size, Camera: cam, Workload: wl,
			Supersample: true, Compaction: true,
		})
		if err != nil {
			return err
		}
		if err := save(name, img); err != nil {
			return err
		}
	}

	// Figure 3: volume renderings, zoomed in and out, through the same
	// scenario backend the study measures.
	volBackend, err := scenario.Lookup(core.Volume)
	if err != nil {
		return err
	}
	for _, name := range []string{"enzo", "nek"} {
		d, err := synthdata.ByName(name)
		if err != nil {
			return err
		}
		vg := synthdata.Grid(d.FieldName, d.Func, 32, 32, 32, synthdata.UnitBounds())
		for view, zoom := range map[string]float64{"far": 0.8, "close": 1.9} {
			sc, err := scenario.SceneFromGrid(device.CPU(), vg, d.FieldName,
				render.OrbitCamera(vg.Bounds(), 30, 20, zoom), size, size)
			if err != nil {
				return err
			}
			runner, err := volBackend.Prepare(sc)
			if err != nil {
				return err
			}
			var in core.Inputs
			_, img, err := runner.RenderFrame(&in)
			if err != nil {
				return err
			}
			if err := save(fmt.Sprintf("fig3_%s_%s", name, view), img); err != nil {
				return err
			}
		}
	}

	// Figures 9/10: one image per proxy via the in situ path.
	renderers := map[string]string{"cloverleaf": "volume", "kripke": "raytracer", "lulesh": "rasterizer"}
	for _, proxy := range sim.Names() {
		s, err := sim.New(proxy, 24, 1, 0)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			s.Step()
		}
		data := conduit.NewNode()
		s.Publish(data)
		sman, err := strawman.Open(nil)
		if err != nil {
			return err
		}
		if err := sman.Publish(data); err != nil {
			return err
		}
		actions := conduit.NewNode()
		add := actions.Append()
		add.Set("action", "add_plot")
		add.Set("var", s.PrimaryField())
		add.Set("renderer", renderers[proxy])
		saveAct := actions.Append()
		saveAct.Set("action", "save_image")
		saveAct.Set("fileName", filepath.Join(e.outDir, "fig10_"+proxy))
		saveAct.Set("width", size)
		saveAct.Set("height", size)
		if err := sman.Execute(actions); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", filepath.Join(e.outDir, "fig10_"+proxy+".png"))
		if err := sman.Close(); err != nil {
			return err
		}
	}

	// A rasterized still for completeness, through the raster backend.
	rastBackend, err := scenario.Lookup(core.Raster)
	if err != nil {
		return err
	}
	runner, err := rastBackend.Prepare(scenario.SceneFromSurface(device.CPU(), iso, cam, size, size))
	if err != nil {
		return err
	}
	var in core.Inputs
	_, img, err := runner.RenderFrame(&in)
	if err != nil {
		return err
	}
	return save("fig2_rm_raster", img)
}
