package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"insitu/internal/core"
	"insitu/internal/scenario"
	"insitu/internal/study"
)

// corpusGroups lists the architectures and renderers present in a
// measured corpus, each sorted — the dynamic axis the model tables
// iterate instead of a hardcoded renderer list, so newly registered
// scenario backends appear in every table automatically.
func corpusGroups(samples []core.Sample) (archs []string, renderers []core.Renderer) {
	seenA := map[string]bool{}
	seenR := map[core.Renderer]bool{}
	for _, s := range samples {
		if !seenA[s.Arch] {
			seenA[s.Arch] = true
			archs = append(archs, s.Arch)
		}
		if !seenR[s.Renderer] {
			seenR[s.Renderer] = true
			renderers = append(renderers, s.Renderer)
		}
	}
	sort.Strings(archs)
	sort.Slice(renderers, func(i, j int) bool { return renderers[i] < renderers[j] })
	return archs, renderers
}

// corpusCache lazily runs the model study once per repro invocation.
type corpusCache struct {
	once sync.Once
	rows []study.Row
	err  error
}

func (c *corpusCache) get(e *env) ([]study.Row, error) {
	c.once.Do(func() {
		plan := study.Plan(e.short)
		fmt.Printf("running the model study (%d configurations, %d worker(s))...\n", len(plan), max(e.parallel, 1))
		c.rows, c.err = study.RunContext(context.Background(), plan, study.Options{
			Workers:  e.parallel,
			Progress: study.LogProgress(os.Stdout),
		})
		if c.err == nil {
			path := filepath.Join(e.outDir, "study_corpus.csv")
			if f, err := os.Create(path); err == nil {
				_ = study.WriteCSV(f, c.rows)
				f.Close()
				fmt.Printf("corpus written to %s\n", path)
			}
		}
	})
	return c.rows, c.err
}

func init() {
	register("table12", "R² values for the six performance models", table12R2)
	register("table13", "3-fold cross-validation accuracy percentiles", table13CV)
	register("fig11", "cross-validation error scatter series (CSV)", fig11Errors)
	register("fig12", "compositing time histogram (tasks x pixels)", fig12Compositing)
	register("fig13", "compositing cross-validation error", fig13CompErrors)
	register("table14", "compositing model accuracy percentiles", table14CompAccuracy)
	register("table15", "held-out machine: train small, predict at scale", table15HeldOut)
	register("table16", "mapping validation: predicted vs observed inputs", table16Mapping)
	register("table17", "experimentally determined model coefficients", table17Coefficients)
	register("fig14", "images renderable in a 60 s budget vs image size", fig14Budget)
	register("fig15", "ray tracing vs rasterization predicted-time ratios", fig15Compare)
}

func table12R2(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		return err
	}
	archs, renderers := corpusGroups(samples)
	printHeader(append([]string{"renderer"}, archs...)...)
	for _, r := range renderers {
		row := cell(string(r))
		for _, arch := range archs {
			m, ok := set.Models[core.Key(arch, r)]
			if !ok {
				row += cell("n/a")
				continue
			}
			row += cell(fmt.Sprintf("%.4f", m.Fit.R2))
		}
		fmt.Println(row)
	}
	return nil
}

func table13CV(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	archs, renderers := corpusGroups(samples)
	printHeader("arch", "renderer", "<=50%", "<=25%", "<=10%", "<=5%", "avg %")
	for _, arch := range archs {
		for _, r := range renderers {
			cv, err := core.CrossValidate(samples, arch, r, 3)
			if err != nil {
				return err
			}
			fmt.Println(cell(arch) + cell(string(r)) +
				cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(50))) +
				cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(25))) +
				cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(10))) +
				cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(5))) +
				cell(fmt.Sprintf("%.1f", cv.MeanAbsPct())))
		}
	}
	return nil
}

func fig11Errors(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	path := filepath.Join(e.outDir, "fig11_cv_errors.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "arch,renderer,predicted_s,error_pct")
	archs, renderers := corpusGroups(samples)
	for _, arch := range archs {
		for _, r := range renderers {
			cv, err := core.CrossValidate(samples, arch, r, 3)
			if err != nil {
				return err
			}
			errs := cv.ErrorPct()
			for i := range errs {
				fmt.Fprintf(f, "%s,%s,%.6f,%.2f\n", arch, r, cv.Predicted[i], errs[i])
			}
		}
	}
	fmt.Printf("wrote %s (error %% vs predicted time, one series per model)\n", path)
	return nil
}

func fig12Compositing(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	// Histogram buckets: tasks x pixel band.
	type key struct {
		tasks int
		band  int
	}
	sum := map[key]float64{}
	count := map[key]int{}
	for _, r := range rows {
		if r.Config.Tasks < 2 {
			continue
		}
		k := key{r.Config.Tasks, r.Config.ImageSize / 64 * 64}
		sum[k] += r.Sample.CompositeTime
		count[k]++
	}
	keys := make([]key, 0, len(sum))
	for k := range sum {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tasks != keys[j].tasks {
			return keys[i].tasks < keys[j].tasks
		}
		return keys[i].band < keys[j].band
	})
	printHeader("tasks", "pixels~", "avg comp time")
	for _, k := range keys {
		fmt.Println(cell(k.tasks) + cell(fmt.Sprintf("%d^2", k.band)) +
			cell(fmt.Sprintf("%.5fs", sum[k]/float64(count[k]))))
	}
	return nil
}

func fig13CompErrors(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	cv, err := core.CrossValidateCompositing(study.Samples(rows), 3)
	if err != nil {
		return err
	}
	path := filepath.Join(e.outDir, "fig13_compositing_cv.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "predicted_s,error_pct")
	errs := cv.ErrorPct()
	for i := range errs {
		fmt.Fprintf(f, "%.6f,%.2f\n", cv.Predicted[i], errs[i])
	}
	fmt.Printf("wrote %s; mean abs error %.1f%%\n", path, cv.MeanAbsPct())
	return nil
}

func table14CompAccuracy(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	cv, err := core.CrossValidateCompositing(study.Samples(rows), 3)
	if err != nil {
		return err
	}
	printHeader("", "<=50%", "<=25%", "<=10%", "<=5%", "avg %")
	fmt.Println(cell("compositing") +
		cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(50))) +
		cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(25))) +
		cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(10))) +
		cell(fmt.Sprintf("%.1f", 100*cv.WithinPct(5))) +
		cell(fmt.Sprintf("%.1f", cv.MeanAbsPct())))
	return nil
}

// table15HeldOut is the Titan experiment: calibrate each model on a small
// number of samples from a machine outside the main study (the "bigiron"
// profile), then predict a larger run and compare.
func table15HeldOut(e *env) error {
	trainN := 12
	bigN, bigTasks := 24, 8
	imgTrain := 128
	if e.short {
		trainN, bigN, bigTasks, imgTrain = 6, 16, 4, 96
	}
	printHeader("renderer", "actual", "predicted", "diff %", "samples")
	for _, r := range scenario.Names() {
		simName := "cloverleaf"
		// Small calibration corpus.
		var train []study.Config
		for i := 0; i < trainN; i++ {
			train = append(train, study.Config{
				Arch: "bigiron", Renderer: r, Sim: simName,
				Tasks: 1 + i%2, ImageSize: imgTrain + 16*(i%4), N: 10 + 2*(i%4),
				Frames: 2,
			})
		}
		rows, err := study.Run(train, nil)
		if err != nil {
			return err
		}
		set, err := core.FitModels(study.Samples(rows))
		if err != nil {
			return err
		}
		m := set.Models[core.Key("bigiron", r)]

		// The large run.
		big, err := study.RunConfig(study.Config{
			Arch: "bigiron", Renderer: r, Sim: simName,
			Tasks: bigTasks, ImageSize: 2 * imgTrain, N: bigN, Frames: 2,
		})
		if err != nil {
			return err
		}
		pred := m.Predict(big.Sample.In)
		actual := big.Sample.RenderTime
		fmt.Println(cell(string(r)) +
			cell(fmt.Sprintf("%.4fs", actual)) +
			cell(fmt.Sprintf("%.4fs", pred)) +
			cell(fmt.Sprintf("%+.1f%%", 100*(pred-actual)/actual)) +
			cell(len(rows)))
	}
	return nil
}

func table16Mapping(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		return err
	}
	mp := core.CalibrateMapping(samples)
	fmt.Printf("calibrated mapping: fill=%.3f sprBase=%.1f\n\n", mp.FillFraction, mp.SPRBase)
	// Pick one configuration per renderer/arch pairing, as the paper does.
	seen := map[string]bool{}
	printHeader("test", "arch/renderer", "AP obs", "AP map", "t actual", "t observed-in", "t mapped-in")
	i := 0
	for _, row := range rows {
		if row.Config.Tasks < 2 {
			continue
		}
		k := core.Key(row.Config.Arch, row.Config.Renderer)
		if seen[k] {
			continue
		}
		seen[k] = true
		m := set.Models[k]
		mapped := mp.Map(core.Config{
			N: row.Config.N, Tasks: row.Config.Tasks,
			Width: row.Config.ImageSize, Height: row.Config.ImageSize,
			Renderer: row.Config.Renderer,
		})
		predObserved := m.Predict(row.Sample.In)
		predMapped := m.Predict(mapped)
		fmt.Println(cell(i) + cell(k) +
			cell(fmt.Sprintf("%.0f", row.Sample.In.AP)) +
			cell(fmt.Sprintf("%.0f", mapped.AP)) +
			cell(fmt.Sprintf("%.4fs", row.Sample.RenderTime)) +
			cell(fmt.Sprintf("%.4fs", predObserved)) +
			cell(fmt.Sprintf("%.4fs", predMapped)))
		i++
		if i >= 6 {
			break
		}
	}
	return nil
}

func table17Coefficients(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	set, err := core.FitModels(study.Samples(rows))
	if err != nil {
		return err
	}
	printHeader("technique", "arch", "c0", "c1", "c2", "c3", "c4")
	keys := make([]string, 0, len(set.Models))
	for k := range set.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := set.Models[k]
		row := cell(string(m.Renderer)) + cell(m.Arch)
		for _, c := range m.Coefficients() {
			row += cell(fmt.Sprintf("%.3g", c))
		}
		fmt.Println(row)
	}
	if set.Compositing != nil {
		row := cell("compositing") + cell("all")
		for _, c := range set.Compositing.Coefficients() {
			row += cell(fmt.Sprintf("%.3g", c))
		}
		fmt.Println(row)
	}
	return nil
}

func fig14Budget(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		return err
	}
	mp := core.CalibrateMapping(samples)
	sizes := []int{256, 512, 768, 1024, 1536, 2048, 3072, 4096}
	n, tasks := 32, 32
	fmt.Printf("images renderable in 60 s (N=%d per task, %d tasks):\n\n", n, tasks)
	archs, renderers := corpusGroups(samples)
	printHeader(append([]string{"arch/renderer"}, intsToStrings(sizes)...)...)
	for _, arch := range archs {
		for _, r := range renderers {
			pts, err := set.ImagesInBudget(arch, r, mp, n, tasks, 60, sizes)
			if err != nil {
				return err
			}
			label := string(r)
			if len(label) > 10 {
				label = label[:10]
			}
			row := cell(arch + "/" + label)
			for _, p := range pts {
				row += cell(fmt.Sprintf("%.0f", p.Images))
			}
			fmt.Println(row)
		}
	}
	return nil
}

func fig15Compare(e *env) error {
	rows, err := e.corpus.get(e)
	if err != nil {
		return err
	}
	samples := study.Samples(rows)
	set, err := core.FitModels(samples)
	if err != nil {
		return err
	}
	mp := core.CalibrateMapping(samples)
	imageSizes := []int{384, 768, 1152, 1536, 1920, 2304, 3072, 4096}
	dataSizes := []int{100, 200, 300, 400, 500}
	cells, err := set.CompareRTvsRaster("cpu", mp, 32, 100, imageSizes, dataSizes)
	if err != nil {
		return err
	}
	fmt.Println("predicted time ratio raytrace/raster (<1: ray tracing faster):")
	fmt.Println()
	printHeader(append([]string{"N \\ px"}, intsToStrings(imageSizes)...)...)
	for _, n := range dataSizes {
		row := cell(n)
		for _, size := range imageSizes {
			for _, c := range cells {
				if c.N == n && c.ImageSize == size {
					if !c.Finite {
						row += cell("n/a")
					} else {
						row += cell(fmt.Sprintf("%.2f", c.Ratio))
					}
				}
			}
		}
		fmt.Println(row)
	}
	// Report the crossover summary the paper highlights.
	rtWins, rastWins := 0, 0
	extreme := 0.0
	for _, c := range cells {
		if !c.Finite {
			continue
		}
		if c.Ratio < 1 {
			rtWins++
			extreme = math.Max(extreme, 1/c.Ratio)
		} else {
			rastWins++
		}
	}
	fmt.Printf("\nray tracing wins %d cells, rasterization %d; ray tracing's best advantage %.1fx\n",
		rtWins, rastWins, extreme)
	return nil
}

func intsToStrings(v []int) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}
