package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"time"

	"insitu/internal/serve"
)

// Session endpoints: a session pins a warm renderer, tracks the
// client's camera path, and speculatively renders the predicted next
// frames into the cache during idle headroom, so a well-predicted
// interactive orbit is served at cache-hit latency.
//
//	POST   /v1/session              open (body: frame request; camera = opening pose)
//	GET    /v1/session/{id}         session info + prefetch counters
//	GET    /v1/session/{id}/frame   next frame (query: azimuth, zoom) -> image/png
//	GET    /v1/session/{id}/stream  server-paced orbit as multipart/x-mixed-replace
//	DELETE /v1/session/{id}         close

// handleSessionOpen opens a session from a JSON frame request.
func (s *webServer) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req serve.FrameRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	sess, err := s.srv.OpenSession(req)
	if err != nil {
		body := errorBody{Error: err.Error()}
		var rej *serve.RejectionError
		if errors.As(err, &rej) {
			body.Rejection = rej
		}
		writeJSON(w, sessionErrStatus(err), body)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Info())
}

// sessionErrStatus extends frameErrStatus with the session-specific
// refusals.
func sessionErrStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrTooManySessions):
		return http.StatusServiceUnavailable
	case errors.Is(err, serve.ErrSessionClosed):
		return http.StatusGone
	default:
		return frameErrStatus(err)
	}
}

// lookupSession resolves the {id} path value, answering 404 itself when
// the session does not exist.
func (s *webServer) lookupSession(w http.ResponseWriter, r *http.Request) (*serve.Session, bool) {
	sess, ok := s.srv.LookupSession(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such session"})
	}
	return sess, ok
}

func (s *webServer) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	if sess, ok := s.lookupSession(w, r); ok {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

func (s *webServer) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

// handleSessionFrame serves the session's next pose. Unset query
// parameters keep the previous pose's value.
func (s *webServer) handleSessionFrame(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	last := sess.LastPose()
	azimuth, zoom := last.Azimuth, last.Zoom
	q := r.URL.Query()
	if v := q.Get("azimuth"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad azimuth: " + err.Error()})
			return
		}
		azimuth = f
	}
	if v := q.Get("zoom"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad zoom: " + err.Error()})
			return
		}
		zoom = f
	}
	res, err := sess.Frame(azimuth, zoom)
	if err != nil {
		body := errorBody{Error: err.Error()}
		var rej *serve.RejectionError
		if errors.As(err, &rej) {
			body.Rejection = rej
		}
		writeJSON(w, sessionErrStatus(err), body)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "image/png")
	h.Set("X-Renderd-Cache", hitMiss(res.CacheHit))
	h.Set("X-Renderd-Prefetch", hitMiss(res.PrefetchHit))
	h.Set("X-Renderd-Quality", fmt.Sprintf("%dx%d n=%d wl=%d", res.Width, res.Height, res.N, res.RTWorkload))
	h.Set("X-Renderd-Queue-Seconds", strconv.FormatFloat(res.QueueSeconds, 'g', 6, 64))
	if res.DeadlineMiss {
		h.Set("X-Renderd-Deadline-Miss", "1")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.PNG)
}

// handleSessionStream pushes a server-paced orbit over the session as
// multipart/x-mixed-replace PNG parts — the browser-compatible motion
// form, and the steady camera velocity the predictor thrives on. Query:
// step (degrees per frame, default 15), fps (default 10), frames (part
// count, default unbounded). The stream ends on client disconnect,
// after the requested frame count, or when the session closes
// (including server drain at shutdown).
func (s *webServer) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	step, fps, frames := 15.0, 10.0, 0
	q := r.URL.Query()
	bad := func(name string, err error) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad %s: %v", name, err)})
	}
	if v := q.Get("step"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			bad("step", err)
			return
		}
		step = f
	}
	if v := q.Get("fps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			bad("fps", fmt.Errorf("want a positive number, got %q", v))
			return
		}
		fps = f
	}
	if v := q.Get("frames"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			bad("frames", err)
			return
		}
		frames = n
	}

	mw := multipart.NewWriter(w)
	w.Header().Set("Content-Type", "multipart/x-mixed-replace; boundary="+mw.Boundary())
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	pose := sess.LastPose()
	tick := time.NewTicker(time.Duration(float64(time.Second) / fps))
	defer tick.Stop()
	for i := 0; frames <= 0 || i < frames; i++ {
		pose.Azimuth += step
		if pose.Azimuth >= 360 {
			pose.Azimuth -= 360
		}
		res, err := sess.Frame(pose.Azimuth, pose.Zoom)
		if err != nil {
			_ = mw.Close()
			return // session closed or render failed; the boundary ends the stream
		}
		part, err := mw.CreatePart(textproto.MIMEHeader{
			"Content-Type":       {"image/png"},
			"X-Renderd-Prefetch": {hitMiss(res.PrefetchHit)},
		})
		if err != nil {
			return
		}
		if _, err := part.Write(res.PNG); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			_ = mw.Close()
			return
		case <-tick.C:
		}
	}
	_ = mw.Close()
}
