package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/serve"
)

// testSnapshotFile writes a hand-built model snapshot (plausible
// positive coefficients, serial arch) so the serving stack starts
// without a slow measurement study.
func testSnapshotFile(t *testing.T) string {
	t.Helper()
	fit := func(coef ...float64) registry.FitDoc {
		return registry.FitDoc{Coef: coef, R2: 0.99, N: 16, P: len(coef)}
	}
	build := fit(1e-8, 1e-5)
	snap := &registry.Snapshot{
		Version: registry.SnapshotVersion, Source: "renderd-test", CreatedUnix: 1,
		Mapping: registry.MappingDoc{FillFraction: 0.55, SPRBase: 373},
		Models: []registry.ModelDoc{
			{Arch: "serial", Renderer: string(core.RayTrace), Fit: fit(1e-7, 5e-8, 1e-4), BuildFit: &build},
			{Arch: "serial", Renderer: string(core.Volume), Fit: fit(1e-8, 1e-9, 1e-4)},
		},
		Compositing: &registry.ModelDoc{
			Arch: "all", Renderer: string(core.Compositing), Fit: fit(1e-9, 1e-9, 1e-4),
		},
	}
	path := filepath.Join(t.TempDir(), "models.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// startRenderd builds the full one-process stack — registry, engine,
// calibrator, serving subsystem, HTTP layer — exactly as main does.
func startRenderd(t *testing.T, refitEvery int) (*httptest.Server, *serve.Server) {
	return startRenderdCluster(t, refitEvery, 0)
}

// startRenderdCluster is startRenderd with -cluster N: the same stack
// plus an in-process worker fleet for sharded frames.
func startRenderdCluster(t *testing.T, refitEvery, clusterN int) (*httptest.Server, *serve.Server) {
	t.Helper()
	srv, fleet, err := buildServer(testSnapshotFile(t), false, 1024, true, refitEvery, clusterN, nil, serve.Config{
		Arch: "serial", Workers: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet != nil {
		t.Cleanup(fleet.Close)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newWebServer(srv, fleet).handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func getFrame(t *testing.T, ts *httptest.Server, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/frame?" + query)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestRenderdClosedLoop is the subsystem's acceptance test, all in one
// process: a tight-deadline request is admitted only after degradation,
// an impossible one is rejected with the prediction, served frames'
// measurements reach the calibrator, and /v1/models shows the
// generation bump — the full predict → act → measure → refit loop.
func TestRenderdClosedLoop(t *testing.T) {
	ts, srv := startRenderd(t, 1)
	engine := srv.Engine()

	// 1. A generous request serves a PNG at the requested quality.
	resp, body := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=72")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type %q", ct)
	}
	if resp.Header.Get("X-Renderd-Cache") != "miss" || resp.Header.Get("X-Renderd-Degraded") != "false" {
		t.Errorf("headers: %+v", resp.Header)
	}
	img, err := png.Decode(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("body is not a PNG: %v", err)
	}
	if b := img.Bounds(); b.Dx() != 72 {
		t.Errorf("PNG width %d, want 72", b.Dx())
	}

	// 2. The identical request hits the cache with identical bytes.
	resp2, body2 := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=72")
	if resp2.Header.Get("X-Renderd-Cache") != "hit" {
		t.Error("second request missed the cache")
	}
	if !bytes.Equal(body, body2) {
		t.Error("cache hit served different bytes")
	}

	// 3. A deadline below the requested-quality prediction but above the
	// floor is admitted only after degradation.
	full, err := engine.Predict(advisor.PredictRequest{
		Arch: "serial", Renderer: string(core.RayTrace), N: 12, Tasks: 1, Width: 512, Renderings: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadlineMS := full.PerImageSeconds / 2 * 1e3
	resp3, body3 := getFrame(t, ts, fmt.Sprintf(
		"backend=raytracer&sim=kripke&n=12&size=512&deadline_ms=%g", deadlineMS))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("degradable request status %d: %s", resp3.StatusCode, body3)
	}
	if resp3.Header.Get("X-Renderd-Degraded") != "true" {
		t.Errorf("tight deadline served undegraded: %+v", resp3.Header)
	}
	img3, err := png.Decode(bytes.NewReader(body3))
	if err != nil {
		t.Fatal(err)
	}
	if b := img3.Bounds(); b.Dx() >= 512 {
		t.Errorf("degraded frame still %dpx wide", b.Dx())
	}

	// 4. An impossible deadline is rejected with the predicted times.
	resp4, body4 := getFrame(t, ts, "backend=raytracer&sim=kripke&n=12&size=512&deadline_ms=0.000001")
	if resp4.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("impossible deadline status %d: %s", resp4.StatusCode, body4)
	}
	var eb errorBody
	if err := json.Unmarshal(body4, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Rejection == nil || eb.Rejection.PredictedSeconds <= 0 {
		t.Fatalf("rejection body lacks the prediction: %s", body4)
	}

	// 5. Served frames feed the calibrator; once the volume group has
	// enough samples the refit publishes and /v1/models bumps its
	// generation — without any POST /v1/observations.
	var models modelsBody
	getJSON(t, ts, "/v1/models", &models)
	gen0 := models.Generation
	for i := 0; i < 6; i++ {
		q := fmt.Sprintf("backend=volume&sim=kripke&n=%d&size=%d&azimuth=%d",
			8+2*(i%3), 48+16*(i%2), 10*i)
		if resp, body := getFrame(t, ts, q); resp.StatusCode != http.StatusOK {
			t.Fatalf("volume frame %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, ts, "/v1/models", &models)
		if models.Generation > gen0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if models.Generation <= gen0 {
		t.Fatalf("generation never bumped past %d (calibration loop broken)", gen0)
	}
	if models.Source != "renderd-frames" {
		t.Errorf("refitted snapshot source %q", models.Source)
	}

	// 6. /v1/metrics reflects the loop: frames rendered, observations
	// queued, at least one refit, and the same generation.
	var mb metricsBody
	getJSON(t, ts, "/v1/metrics", &mb)
	if mb.Serve.FramesRendered == 0 || mb.Serve.ObservationsQueued == 0 {
		t.Errorf("metrics missing serving traffic: %+v", mb.Serve)
	}
	if mb.Serve.Refits == 0 {
		t.Errorf("metrics missing refits: %+v", mb.Serve)
	}
	if mb.Generation != models.Generation {
		t.Errorf("metrics generation %d, models %d", mb.Generation, models.Generation)
	}
}

// TestRenderdClusterMode exercises the -cluster topology over HTTP: a
// sharded request serves a PNG with the compositing headers, the shard
// count is part of the frame's cache identity, /v1/metrics carries the
// fleet counters, and sharding without a fleet is a client error.
func TestRenderdClusterMode(t *testing.T) {
	ts, _ := startRenderdCluster(t, 1000, 3)

	resp, body := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48&shards=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded frame status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Renderd-Shards"); got != "3" {
		t.Errorf("X-Renderd-Shards = %q, want 3", got)
	}
	if resp.Header.Get("X-Renderd-Composite-Seconds") == "" ||
		resp.Header.Get("X-Renderd-Predicted-Composite-Seconds") == "" {
		t.Errorf("compositing headers missing: %+v", resp.Header)
	}
	if ranks := strings.Split(resp.Header.Get("X-Renderd-Rank-Render-Seconds"), ","); len(ranks) != 3 {
		t.Errorf("X-Renderd-Rank-Render-Seconds = %q, want 3 entries", resp.Header.Get("X-Renderd-Rank-Render-Seconds"))
	}
	if _, err := png.Decode(bytes.NewReader(body)); err != nil {
		t.Fatalf("sharded body is not a PNG: %v", err)
	}

	// The unsharded variant of the same scene is a different frame: no
	// cache hit, shard-free headers, different pixels.
	respLocal, bodyLocal := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48")
	if respLocal.StatusCode != http.StatusOK {
		t.Fatalf("local frame status %d: %s", respLocal.StatusCode, bodyLocal)
	}
	if respLocal.Header.Get("X-Renderd-Cache") != "miss" || respLocal.Header.Get("X-Renderd-Shards") != "1" {
		t.Errorf("local request aliased the sharded frame: %+v", respLocal.Header)
	}
	if respLocal.Header.Get("X-Renderd-Composite-Seconds") != "" {
		t.Errorf("local frame carries compositing headers: %+v", respLocal.Header)
	}
	if bytes.Equal(body, bodyLocal) {
		t.Error("sharded and local frames served identical bytes")
	}

	// Repeating the sharded request hits its own cache entry.
	respAgain, bodyAgain := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48&shards=3")
	if respAgain.Header.Get("X-Renderd-Cache") != "hit" || !bytes.Equal(body, bodyAgain) {
		t.Error("repeat sharded request did not hit its cache entry")
	}

	var mb metricsBody
	getJSON(t, ts, "/v1/metrics", &mb)
	if mb.Serve.ClusterFrames != 1 || mb.Serve.ClusterShardsTotal != 3 {
		t.Errorf("cluster counters: %+v", mb.Serve)
	}
	if mb.Serve.Cluster == nil || mb.Serve.Cluster.Workers != 3 {
		t.Errorf("fleet stats: %+v", mb.Serve.Cluster)
	}

	// Oversharding the fleet is a 400.
	resp, _ = getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48&shards=9")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversharded request status %d, want 400", resp.StatusCode)
	}

	// A fleet-less server refuses sharded requests outright.
	tsLocal, _ := startRenderd(t, 1000)
	resp, _ = getFrame(t, tsLocal, "backend=volume&sim=kripke&n=8&size=48&shards=2")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("sharded request without a fleet: status %d, want 400", resp.StatusCode)
	}
}

// TestRenderdRequestValidation: unknown names answer 400 with the
// registered alternatives; model-less backends 404; malformed numbers
// 400.
func TestRenderdRequestValidation(t *testing.T) {
	ts, _ := startRenderd(t, 1000)

	resp, body := getFrame(t, ts, "backend=teapot&n=8&size=64")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "raytracer") {
		t.Errorf("unknown backend: status %d body %s", resp.StatusCode, body)
	}
	resp, body = getFrame(t, ts, "backend=raytracer&sim=spice&n=8&size=64")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "kripke") {
		t.Errorf("unknown sim: status %d body %s", resp.StatusCode, body)
	}
	// Registered backend, no model in this snapshot: 404, not 400.
	resp, _ = getFrame(t, ts, "backend=rasterizer&n=8&size=64")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("model-less backend status %d, want 404", resp.StatusCode)
	}
	resp, _ = getFrame(t, ts, "backend=raytracer&n=eight&size=64")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed n status %d", resp.StatusCode)
	}
	// POST body form: malformed JSON is 400.
	r, err := ts.Client().Post(ts.URL+"/v1/frame", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", r.StatusCode)
	}

	// POST and GET forms answer identically for the same request.
	reqBody, _ := json.Marshal(serve.FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 64})
	r, err = ts.Client().Post(ts.URL+"/v1/frame", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	postBytes, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("POST frame status %d: %s", r.StatusCode, postBytes)
	}
	_, getBytes := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=64")
	if !bytes.Equal(postBytes, getBytes) {
		t.Error("POST and GET served different bytes for one frame")
	}

	var hz healthzBody
	if code := getJSON(t, ts, "/healthz", &hz); code != http.StatusOK || hz.Status != "ok" || hz.Models != 2 {
		t.Errorf("healthz: code %d body %+v", code, hz)
	}
}
