package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/loadgen"
	"insitu/internal/serve"
)

// openTestSession opens a session over HTTP and returns its info.
func openTestSession(t *testing.T, ts *httptest.Server, req serve.FrameRequest) serve.SessionInfo {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("open session: status %d: %s", resp.StatusCode, b)
	}
	var info serve.SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// TestRenderdSessionLifecycle: open a session over HTTP, orbit it
// frame by frame (each a decodable PNG with cache/prefetch headers),
// watch the prefetch counters surface in info and /v1/metrics, and
// close it.
func TestRenderdSessionLifecycle(t *testing.T) {
	ts, _ := startRenderd(t, 1000)
	info := openTestSession(t, ts, serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64,
	})
	if info.ID == "" || info.Width != 64 || info.N != 8 {
		t.Fatalf("session info %+v", info)
	}

	prefetchHits := 0
	for i := 1; i <= 8; i++ {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/session/%s/frame?azimuth=%d", ts.URL, info.ID, 15*i))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frame %d: status %d: %s", i, resp.StatusCode, body)
		}
		if _, err := png.Decode(bytes.NewReader(body)); err != nil {
			t.Fatalf("frame %d not a PNG: %v", i, err)
		}
		switch resp.Header.Get("X-Renderd-Prefetch") {
		case "hit":
			prefetchHits++
		case "miss":
		default:
			t.Fatalf("frame %d: bad X-Renderd-Prefetch %q", i, resp.Header.Get("X-Renderd-Prefetch"))
		}
	}

	var metrics struct {
		Serve serve.Stats `json:"serve"`
	}
	if code := getJSON(t, ts, "/v1/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if metrics.Serve.SessionsOpen != 1 || metrics.Serve.SessionFrames != 8 {
		t.Errorf("metrics sessions: %+v", metrics.Serve)
	}
	if got := metrics.Serve.PrefetchHits; got != uint64(prefetchHits) {
		t.Errorf("metrics prefetch hits %d, headers said %d", got, prefetchHits)
	}
	if metrics.Serve.RunnerCache.Pinned != 1 {
		t.Errorf("runner cache pins: %+v", metrics.Serve.RunnerCache)
	}

	var gotInfo serve.SessionInfo
	if code := getJSON(t, ts, "/v1/session/"+info.ID, &gotInfo); code != http.StatusOK {
		t.Fatalf("session info status %d", code)
	}
	if gotInfo.Frames != 8 || gotInfo.PrefetchHits != uint64(prefetchHits) {
		t.Errorf("session info counters %+v", gotInfo)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+info.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close session: status %d", resp.StatusCode)
	}
	// Closed sessions are gone: frames answer 404.
	resp, err = ts.Client().Get(ts.URL + "/v1/session/" + info.ID + "/frame?azimuth=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("frame on closed session: status %d, want 404", resp.StatusCode)
	}
}

// TestRenderdSessionStream: the stream endpoint pushes
// multipart/x-mixed-replace PNG parts and terminates after the
// requested frame count.
func TestRenderdSessionStream(t *testing.T) {
	ts, _ := startRenderd(t, 1000)
	info := openTestSession(t, ts, serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64,
	})
	resp, err := ts.Client().Get(ts.URL + "/v1/session/" + info.ID + "/stream?frames=4&fps=200")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || mt != "multipart/x-mixed-replace" {
		t.Fatalf("stream content type %q (%v)", resp.Header.Get("Content-Type"), err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	parts := 0
	for {
		p, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("part %d: %v", parts, err)
		}
		data, err := io.ReadAll(p)
		if err != nil {
			t.Fatalf("part %d read: %v", parts, err)
		}
		if _, err := png.Decode(bytes.NewReader(data)); err != nil {
			t.Fatalf("part %d not a PNG: %v", parts, err)
		}
		parts++
	}
	if parts != 4 {
		t.Fatalf("stream delivered %d parts, want 4", parts)
	}
}

// TestRenderdSessionDrain: DrainSessions (the graceful-shutdown hook)
// ends live sessions — their next frame answers 410 Gone — and new
// opens are refused, while stateless frame serving still works until
// Close.
func TestRenderdSessionDrain(t *testing.T) {
	ts, srv := startRenderd(t, 1000)
	info := openTestSession(t, ts, serve.FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64,
	})
	srv.DrainSessions()

	resp, err := ts.Client().Get(ts.URL + "/v1/session/" + info.ID + "/frame?azimuth=15")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// The drained session is unregistered (404) — it must not answer
	// frames as if alive.
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusGone {
		t.Fatalf("frame after drain: status %d, want 404 or 410", resp.StatusCode)
	}

	body, _ := json.Marshal(serve.FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64})
	post, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open after drain: status %d, want 503", post.StatusCode)
	}

	// One-shot frames are unaffected by the session drain.
	frame, pngBytes := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=64&azimuth=7")
	if frame.StatusCode != http.StatusOK {
		t.Fatalf("one-shot frame after drain: status %d: %s", frame.StatusCode, pngBytes)
	}
}

// TestRenderdSessionLoadgen: the interactive-session load generator
// drives real sessions end to end and reports time-to-photon and the
// prefetch hit rate.
func TestRenderdSessionLoadgen(t *testing.T) {
	ts, _ := startRenderd(t, 1000)
	body, err := json.Marshal(serve.FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.RunSessions(loadgen.SessionOptions{
		Target: ts.URL, Client: ts.Client(),
		Opens:    [][]byte{body},
		Sessions: 2, Duration: 700 * 1e6, // 700ms
		ThinkTime: 10 * 1e6, // 10ms
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("loadgen failures: %+v", rep)
	}
	if rep.Frames == 0 {
		t.Fatal("loadgen delivered no frames")
	}
	if rep.P99 == 0 || rep.P50 > rep.P99 {
		t.Errorf("percentiles out of order: %+v", rep)
	}
	out := rep.String()
	for _, want := range []string{"time-to-photon", "prefetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
