package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"insitu/internal/cluster"
	"insitu/internal/comm"
	"insitu/internal/serve"
)

// startFaultyRenderd is startRenderdCluster with an injected fault plan
// and fast failure detection, for exercising the degraded HTTP surface.
func startFaultyRenderd(t *testing.T, clusterN int, plan *comm.FaultPlan) (*httptest.Server, *cluster.Cluster) {
	t.Helper()
	copts := &cluster.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		AttemptTimeout:    time.Second,
		DrainGrace:        250 * time.Millisecond,
		RetryBackoff:      5 * time.Millisecond,
		Faults:            plan,
	}
	srv, fleet, err := buildServer(testSnapshotFile(t), false, 1024, false, 8, clusterN, copts, serve.Config{
		Arch: "serial", Workers: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(newWebServer(srv, fleet).handler())
	t.Cleanup(ts.Close)
	return ts, fleet
}

// TestReadyzFleetQuorum drives readiness through a rank death: ready
// while the fleet is whole, 503 once the survivors lose quorum — while
// /healthz stays 200 throughout, because the process itself is fine.
func TestReadyzFleetQuorum(t *testing.T) {
	plan := comm.NewFaultPlan(7)
	ts, fleet := startFaultyRenderd(t, 2, plan)

	var rz readyzBody
	if code := getJSON(t, ts, "/readyz", &rz); code != http.StatusOK {
		t.Fatalf("readyz on a healthy fleet: code %d body %+v", code, rz)
	}
	if rz.FleetWorkers != 2 || rz.FleetAlive != 2 {
		t.Errorf("readyz fleet view %+v, want 2/2 alive", rz)
	}

	plan.KillRank(2)
	deadline := time.Now().Add(10 * time.Second)
	for fleet.AliveWorkers() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := fleet.AliveWorkers(); got != 1 {
		t.Fatalf("alive workers %d after kill, want 1", got)
	}

	rz = readyzBody{}
	if code := getJSON(t, ts, "/readyz", &rz); code != http.StatusServiceUnavailable {
		t.Errorf("readyz below quorum: code %d body %+v, want 503", code, rz)
	}
	if rz.FleetAlive != 1 || len(rz.FleetDead) != 1 {
		t.Errorf("readyz fleet view below quorum %+v, want 1 alive 1 dead", rz)
	}
	var hz healthzBody
	if code := getJSON(t, ts, "/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz with a degraded fleet: code %d body %+v, want liveness ok", code, hz)
	}

	// A sharded request against the lone survivor is clamped and served,
	// and the response says so.
	resp, body := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48&shards=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped frame: code %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Renderd-Fleet-Degraded"); got != "true" {
		t.Errorf("X-Renderd-Fleet-Degraded = %q on a clamped frame, want true", got)
	}
	if got := resp.Header.Get("X-Renderd-Shards"); got != "1" {
		t.Errorf("X-Renderd-Shards = %q after clamping to the survivor, want 1", got)
	}
}

// TestFrameFaultHeadersHealthy pins the new response headers' healthy
// values, so dashboards can rely on their presence.
func TestFrameFaultHeadersHealthy(t *testing.T) {
	ts, _ := startRenderdCluster(t, 8, 2)
	resp, body := getFrame(t, ts, "backend=volume&sim=kripke&n=8&size=48&shards=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame: code %d body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Renderd-Retries"); got != "0" {
		t.Errorf("X-Renderd-Retries = %q on a healthy frame, want 0", got)
	}
	if got := resp.Header.Get("X-Renderd-Fleet-Degraded"); got != "false" {
		t.Errorf("X-Renderd-Fleet-Degraded = %q on a healthy frame, want false", got)
	}
}

// TestChaosLoadgenSmoke runs the -chaos loadgen end to end: seeded
// faults against an in-process fleet, every response classified, zero
// failed requests — degraded service, not denied service.
func TestChaosLoadgenSmoke(t *testing.T) {
	err := runLoadgen(loadgenConfig{
		regPath:     testSnapshotFile(t),
		cacheSize:   256,
		arch:        "serial",
		duration:    1500 * time.Millisecond,
		concurrency: 4,
		chaos:       true,
		chaosSeed:   3,
		clusterN:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
}
