package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitu/internal/obs"
)

// obsServer renders a couple of frames (one miss, one hit) so every
// observability surface has data to show.
func obsServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts, _ := startRenderd(t, 1000)
	for i := 0; i < 2; i++ {
		resp, body := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=64")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frame status %d: %s", resp.StatusCode, body)
		}
	}
	return ts
}

// walkJSON descends a decoded JSON document by key path, failing the
// test with the path when a segment is missing.
func walkJSON(t *testing.T, doc any, path ...string) any {
	t.Helper()
	cur := doc
	for i, key := range path {
		m, ok := cur.(map[string]any)
		if !ok {
			t.Fatalf("%s: not an object", strings.Join(path[:i], "."))
		}
		cur, ok = m[key]
		if !ok {
			t.Fatalf("missing key %s", strings.Join(path[:i+1], "."))
		}
	}
	return cur
}

// TestMetricsJSONShape is the golden shape test for /v1/metrics: the
// keys dashboards and the chaos harness read must exist with the
// documented structure — a histogram with quantiles and buckets per
// lifecycle stage, and per-backend drift series.
func TestMetricsJSONShape(t *testing.T) {
	ts := obsServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	for _, key := range []string{"uptime_seconds", "generation", "serve", "ops", "predict_cache"} {
		walkJSON(t, doc, key)
	}
	for _, key := range []string{"admitted", "cache_hits", "frames_rendered", "frame_stages"} {
		walkJSON(t, doc, "serve", key)
	}

	// The total histogram carries count, quantiles, and buckets.
	total := walkJSON(t, doc, "serve", "frame_stages", "total")
	for _, key := range []string{"count", "sum_seconds", "p50_seconds", "p95_seconds", "p99_seconds", "buckets"} {
		walkJSON(t, total, key)
	}
	if n := walkJSON(t, total, "count").(float64); n < 2 {
		t.Errorf("frame_stages.total.count = %v, want >= 2", n)
	}
	buckets := walkJSON(t, total, "buckets").([]any)
	if len(buckets) == 0 {
		t.Fatal("frame_stages.total.buckets empty")
	}
	walkJSON(t, buckets[0], "le_seconds")
	walkJSON(t, buckets[0], "count")

	// Per-stage histograms name the lifecycle stages this traffic took.
	stages := walkJSON(t, doc, "serve", "frame_stages", "stages").([]any)
	seen := map[string]bool{}
	for _, s := range stages {
		seen[walkJSON(t, s, "stage").(string)] = true
		walkJSON(t, s, "count")
	}
	for _, want := range []string{"admit", "queue_wait", "runner_lease", "render", "encode", "cache_store"} {
		if !seen[want] {
			t.Errorf("frame_stages.stages missing %q (have %v)", want, seen)
		}
	}

	// Drift series: backend x term with count, means, and buckets.
	drift := walkJSON(t, doc, "serve", "model_drift").([]any)
	var rendered int
	for _, d := range drift {
		for _, key := range []string{"backend", "term", "count", "mean_error", "mean_abs_error", "buckets"} {
			walkJSON(t, d, key)
		}
		if walkJSON(t, d, "term").(string) == "render" && walkJSON(t, d, "count").(float64) > 0 {
			rendered++
		}
	}
	if rendered == 0 {
		t.Errorf("model_drift has no populated render series: %v", drift)
	}
}

// TestPromExposition validates /metrics against the Prometheus text
// format and spot-checks the series a scrape must carry.
func TestPromExposition(t *testing.T) {
	ts := obsServer(t)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	if err := obs.ValidatePromText(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		"renderd_serve_frames_rendered ",
		"renderd_serve_frame_stages_total_count ",
		"renderd_serve_frame_stages_total_bucket{le=",
		`renderd_serve_model_drift_bucket{backend="raytracer",term="render",le=`,
		"renderd_generation ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceEndpoint: /v1/trace returns the recent lifecycle timelines,
// honors last=N, and format=chrome emits a trace_event array.
func TestTraceEndpoint(t *testing.T) {
	ts := obsServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/trace?last=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body traceBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Count < 2 || len(body.Traces) != body.Count {
		t.Fatalf("trace count %d (%d entries), want >= 2", body.Count, len(body.Traces))
	}
	// One miss (full lifecycle) and one hit (admission only).
	var sawRender, sawHit bool
	for _, tr := range body.Traces {
		if tr.CacheHit {
			sawHit = true
		}
		for _, sp := range tr.Spans {
			if sp.Stage == "render" {
				sawRender = true
			}
		}
		if len(tr.Spans) == 0 || tr.WallSeconds < 0 {
			t.Errorf("degenerate trace: %+v", tr)
		}
	}
	if !sawRender || !sawHit {
		t.Errorf("traces missing render span (%v) or cache hit (%v)", sawRender, sawHit)
	}

	// last=1 narrows the window.
	var one traceBody
	if code := getJSON(t, ts, "/v1/trace?last=1", &one); code != http.StatusOK || one.Count != 1 {
		t.Errorf("last=1: code %d count %d", code, one.Count)
	}
	// A bad last is a 400.
	var eb errorBody
	if code := getJSON(t, ts, "/v1/trace?last=zero", &eb); code != http.StatusBadRequest {
		t.Errorf("bad last: code %d", code)
	}

	// The Chrome dump is a JSON array of complete events.
	resp2, err := ts.Client().Get(ts.URL + "/v1/trace?last=10&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("chrome dump has no events")
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event phase %v, want X: %v", ev["ph"], ev)
		}
	}
}

// TestFrameResponseQueueHeaders: a rendered frame reports its scheduler
// queue wait; impossible deadlines never get far enough to queue, and a
// served frame that missed its deadline is flagged.
func TestFrameResponseQueueHeaders(t *testing.T) {
	ts, _ := startRenderd(t, 1000)
	resp, body := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=64")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frame status %d: %s", resp.StatusCode, body)
	}
	qs := resp.Header.Get("X-Renderd-Queue-Seconds")
	if qs == "" {
		t.Fatal("X-Renderd-Queue-Seconds missing")
	}
	var sec float64
	if _, err := fmt.Sscanf(qs, "%g", &sec); err != nil || sec < 0 {
		t.Errorf("X-Renderd-Queue-Seconds = %q", qs)
	}
	if resp.Header.Get("X-Renderd-Deadline-Miss") != "" {
		t.Errorf("fresh render flagged as a deadline miss: %+v", resp.Header)
	}
	// A cache hit never queued: zero wait, no miss flag.
	resp2, _ := getFrame(t, ts, "backend=raytracer&sim=kripke&n=8&size=64")
	if resp2.Header.Get("X-Renderd-Cache") != "hit" {
		t.Fatal("second request missed the cache")
	}
	if got := resp2.Header.Get("X-Renderd-Queue-Seconds"); got != "0" {
		t.Errorf("cache hit queue seconds %q, want 0", got)
	}
}
