package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"insitu/internal/cluster"
	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/loadgen"
	"insitu/internal/serve"
)

// loadgenConfig carries the -loadgen flag set.
type loadgenConfig struct {
	target      string
	regPath     string
	bootstrap   bool
	cacheSize   int
	arch        string
	duration    time.Duration
	concurrency int
	sessions    int
	think       time.Duration
	// chaos injects deterministic fleet faults (seeded packet loss from
	// the start, a rank kill a third of the way in, healed a third
	// later) against an in-process -cluster fleet, and reports how the
	// served traffic degraded and recovered.
	chaos     bool
	chaosSeed uint64
	clusterN  int
}

// runLoadgen sustains a frame-request mix against a renderd. With no
// target it builds the full serving stack in-process (bootstrapping
// models if needed), so one command measures what this machine can
// serve. Deadline-gated 422 rejections count as successful answers —
// a fast, correct "no" is exactly what the admission controller is for.
//
// sessions > 0 switches to interactive-session mode: that many virtual
// clients each open a streaming session and orbit the camera with think
// time between frames, and the report is time-to-photon percentiles
// plus the speculative-prefetch hit rate instead of raw QPS.
//
// chaos switches to fault-injection mode: the in-process fleet runs
// under a seeded fault plan and every response is bucketed by cause
// (ok / degraded / retried / fleet-degraded / rejected), with the
// fleet's failure, fallback, and circuit-breaker counters appended —
// the CLI face of the chaos test suite.
func runLoadgen(cfg loadgenConfig) error {
	target := cfg.target
	client := &http.Client{Timeout: 30 * time.Second}
	if cfg.chaos {
		if target != "" {
			return fmt.Errorf("loadgen: -chaos drives its own in-process fleet; drop -target")
		}
		if cfg.sessions > 0 {
			return fmt.Errorf("loadgen: -chaos applies to the frame mix, not -sessions")
		}
		if cfg.clusterN < 2 {
			cfg.clusterN = 4
		}
	}
	var plan *comm.FaultPlan
	if target == "" {
		// Calibration stays off: a benchmark must not refit the served
		// models from its own synthetic mix, and must never rewrite the
		// user's registry file.
		var copts *cluster.Options
		if cfg.chaos {
			plan = comm.NewFaultPlan(cfg.chaosSeed)
			// Tighter detection than the serving defaults, so recovery
			// fits inside a short loadgen run.
			copts = &cluster.Options{
				HeartbeatTimeout: 500 * time.Millisecond,
				AttemptTimeout:   2 * time.Second,
				DrainGrace:       500 * time.Millisecond,
				RetryBackoff:     50 * time.Millisecond,
				// Background packet loss should heal by retry, not
				// snowball into blame evictions — the scheduled rank
				// kill is the eviction event of the run.
				BlameThreshold: 6,
				Faults:         plan,
			}
		}
		srv, fleet, err := buildServer(cfg.regPath, cfg.bootstrap, cfg.cacheSize, false, 8, cfg.clusterN, copts, serve.Config{
			Arch: cfg.arch, Logf: func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		if fleet != nil {
			defer fleet.Close()
		}
		defer srv.Close()
		ts := httptest.NewServer(newWebServer(srv, fleet).handler())
		defer ts.Close()
		target = ts.URL
		client = ts.Client()
		client.Timeout = 30 * time.Second
		log.Printf("loadgen: in-process renderd at %s", target)
	}

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}

	if cfg.sessions > 0 {
		// A few distinct scene configurations, so concurrent sessions
		// share (and contend for) the warm-runner cache like real mixed
		// traffic would.
		var opens [][]byte
		for i := 0; i < 4; i++ {
			opens = append(opens, mustJSON(serve.FrameRequest{
				Backend: core.RayTrace,
				Sim:     "kripke",
				N:       10 + 2*(i%2),
				Width:   96 + 32*(i%2),
				Azimuth: float64(90 * i),
			}))
		}
		log.Printf("loadgen: %d interactive sessions for %s against %s (think %s)",
			cfg.sessions, cfg.duration, target, cfg.think)
		rep, err := loadgen.RunSessions(loadgen.SessionOptions{
			Target: target, Client: client, Opens: opens,
			Sessions: cfg.sessions, Duration: cfg.duration, ThinkTime: cfg.think,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nsession loadgen results\n%s", rep)
		if rep.Failed > 0 {
			return fmt.Errorf("loadgen: %d opens/frames failed", rep.Failed)
		}
		return nil
	}
	// The mix: a handful of distinct frames (so the cache works but is
	// not a single key), a rotating camera, and a few deadline-gated
	// requests that exercise degradation and rejection. In chaos mode
	// the frames shard across the fleet, so the injected faults land on
	// live traffic.
	backends := []core.Renderer{core.RayTrace, core.Volume}
	var shots []loadgen.Shot
	for i := 0; i < 48; i++ {
		req := serve.FrameRequest{
			Backend: backends[i%len(backends)],
			Sim:     "kripke",
			N:       10 + 2*(i%4),
			Width:   96 + 32*(i%3),
			Azimuth: float64(30 * (i % 4)),
		}
		if i%6 == 0 {
			req.DeadlineMillis = 50
		}
		if i%12 == 0 {
			req.DeadlineMillis = 0.001 // impossibly tight: a fast 422
		}
		if cfg.chaos {
			req.Shards = 2 + i%(cfg.clusterN-1)
		}
		shots = append(shots, loadgen.Shot{Path: "/v1/frame", Body: mustJSON(req)})
	}

	if plan != nil {
		scheduleChaos(plan, cfg.clusterN, cfg.duration)
	}
	log.Printf("loadgen: %d clients for %s against %s", cfg.concurrency, cfg.duration, target)
	rep, err := loadgen.Run(loadgen.Options{
		Target: target, Client: client, Shots: shots,
		Duration: cfg.duration, Concurrency: cfg.concurrency,
		Accept: func(status int) bool {
			return status == http.StatusOK || status == http.StatusUnprocessableEntity
		},
		Classify: classifyFrameResponse,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nloadgen results\n%s", rep)
	if cfg.chaos {
		printFleetFaults(client, target)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed", rep.Failed)
	}
	return nil
}

// classifyFrameResponse buckets one /v1/frame answer by cause for the
// report breakdown. Order matters: a fleet-degraded frame may also be
// quality-degraded; the fleet cause is the interesting one.
func classifyFrameResponse(status int, h http.Header) string {
	switch {
	case status == http.StatusUnprocessableEntity:
		return "rejected"
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	case status != http.StatusOK:
		return fmt.Sprintf("http-%d", status)
	case h.Get("X-Renderd-Fleet-Degraded") == "true":
		return "fleet-degraded"
	case h.Get("X-Renderd-Retries") != "" && h.Get("X-Renderd-Retries") != "0":
		return "retried"
	case h.Get("X-Renderd-Degraded") == "true":
		return "degraded"
	}
	return "ok"
}

// scheduleChaos arms the fault timeline: seeded background packet loss
// on every worker-worker link from the start, the highest rank killed a
// third of the way through the run, the surviving links healed a third
// later. Deterministic for a fixed seed, traffic order aside.
func scheduleChaos(plan *comm.FaultPlan, clusterN int, duration time.Duration) {
	for i := 1; i <= clusterN; i++ {
		for j := 1; j <= clusterN; j++ {
			if i != j {
				plan.DropEvery(i, j, 0.001)
			}
		}
	}
	victim := clusterN
	go func() {
		time.Sleep(duration / 3)
		log.Printf("chaos: killing rank %d", victim)
		plan.KillRank(victim)
		time.Sleep(duration / 3)
		log.Printf("chaos: healing link faults (rank %d stays evicted)", victim)
		plan.Reset()
	}()
}

// printFleetFaults appends the server-side fault accounting to the
// chaos report — the causes (breaker opens, evictions) behind the
// response-header breakdown.
func printFleetFaults(client *http.Client, target string) {
	resp, err := client.Get(target + "/v1/metrics")
	if err != nil {
		log.Printf("chaos: fetching /v1/metrics: %v", err)
		return
	}
	defer resp.Body.Close()
	var mb metricsBody
	if err := json.NewDecoder(resp.Body).Decode(&mb); err != nil {
		log.Printf("chaos: decoding /v1/metrics: %v", err)
		return
	}
	st := mb.Serve
	fmt.Printf("  fleet:       retries %d  failures %d  fallbacks %d  clamped %d\n",
		st.ClusterRetries, st.ClusterFailures, st.ClusterFallbacks, st.FleetClamped)
	fmt.Printf("  breaker:     opens %d  short-circuits %d  state %s\n",
		st.BreakerOpens, st.BreakerShortCircuits, st.BreakerState)
	if st.Cluster != nil {
		fmt.Printf("  cluster:     %d/%d ranks alive  dead %v  evictions %d  stale drops %d\n",
			st.Cluster.AliveWorkers, st.Cluster.Workers, st.Cluster.DeadRanks,
			st.Cluster.Evictions, st.Cluster.StaleDrops)
	}
}
