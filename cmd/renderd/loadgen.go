package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"insitu/internal/core"
	"insitu/internal/loadgen"
	"insitu/internal/serve"
)

// runLoadgen sustains a frame-request mix against a renderd. With no
// target it builds the full serving stack in-process (bootstrapping
// models if needed), so one command measures what this machine can
// serve. Deadline-gated 422 rejections count as successful answers —
// a fast, correct "no" is exactly what the admission controller is for.
//
// sessions > 0 switches to interactive-session mode: that many virtual
// clients each open a streaming session and orbit the camera with think
// time between frames, and the report is time-to-photon percentiles
// plus the speculative-prefetch hit rate instead of raw QPS.
func runLoadgen(target, regPath string, bootstrap bool, cacheSize int, arch string, duration time.Duration, concurrency, sessions int, think time.Duration) error {
	client := &http.Client{Timeout: 30 * time.Second}
	if target == "" {
		// Calibration stays off: a benchmark must not refit the served
		// models from its own synthetic mix, and must never rewrite the
		// user's registry file.
		srv, _, err := buildServer(regPath, bootstrap, cacheSize, false, 8, 0, serve.Config{
			Arch: arch, Logf: func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(newWebServer(srv).handler())
		defer ts.Close()
		target = ts.URL
		client = ts.Client()
		client.Timeout = 30 * time.Second
		log.Printf("loadgen: in-process renderd at %s", target)
	}

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}

	if sessions > 0 {
		// A few distinct scene configurations, so concurrent sessions
		// share (and contend for) the warm-runner cache like real mixed
		// traffic would.
		var opens [][]byte
		for i := 0; i < 4; i++ {
			opens = append(opens, mustJSON(serve.FrameRequest{
				Backend: core.RayTrace,
				Sim:     "kripke",
				N:       10 + 2*(i%2),
				Width:   96 + 32*(i%2),
				Azimuth: float64(90 * i),
			}))
		}
		log.Printf("loadgen: %d interactive sessions for %s against %s (think %s)",
			sessions, duration, target, think)
		rep, err := loadgen.RunSessions(loadgen.SessionOptions{
			Target: target, Client: client, Opens: opens,
			Sessions: sessions, Duration: duration, ThinkTime: think,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nsession loadgen results\n%s", rep)
		if rep.Failed > 0 {
			return fmt.Errorf("loadgen: %d opens/frames failed", rep.Failed)
		}
		return nil
	}
	// The mix: a handful of distinct frames (so the cache works but is
	// not a single key), a rotating camera, and a few deadline-gated
	// requests that exercise degradation and rejection.
	backends := []core.Renderer{core.RayTrace, core.Volume}
	var shots []loadgen.Shot
	for i := 0; i < 48; i++ {
		req := serve.FrameRequest{
			Backend: backends[i%len(backends)],
			Sim:     "kripke",
			N:       10 + 2*(i%4),
			Width:   96 + 32*(i%3),
			Azimuth: float64(30 * (i % 4)),
		}
		if i%6 == 0 {
			req.DeadlineMillis = 50
		}
		if i%12 == 0 {
			req.DeadlineMillis = 0.001 // impossibly tight: a fast 422
		}
		shots = append(shots, loadgen.Shot{Path: "/v1/frame", Body: mustJSON(req)})
	}

	log.Printf("loadgen: %d clients for %s against %s", concurrency, duration, target)
	rep, err := loadgen.Run(loadgen.Options{
		Target: target, Client: client, Shots: shots,
		Duration: duration, Concurrency: concurrency,
		Accept: func(status int) bool {
			return status == http.StatusOK || status == http.StatusUnprocessableEntity
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nloadgen results\n%s", rep)
	if rep.Failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed", rep.Failed)
	}
	return nil
}
