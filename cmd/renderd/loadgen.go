package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"insitu/internal/core"
	"insitu/internal/loadgen"
	"insitu/internal/serve"
)

// runLoadgen sustains a frame-request mix against a renderd. With no
// target it builds the full serving stack in-process (bootstrapping
// models if needed), so one command measures what this machine can
// serve. Deadline-gated 422 rejections count as successful answers —
// a fast, correct "no" is exactly what the admission controller is for.
func runLoadgen(target, regPath string, bootstrap bool, cacheSize int, arch string, duration time.Duration, concurrency int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	if target == "" {
		// Calibration stays off: a benchmark must not refit the served
		// models from its own synthetic mix, and must never rewrite the
		// user's registry file.
		srv, _, err := buildServer(regPath, bootstrap, cacheSize, false, 8, 0, serve.Config{
			Arch: arch, Logf: func(string, ...any) {},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(newWebServer(srv).handler())
		defer ts.Close()
		target = ts.URL
		client = ts.Client()
		client.Timeout = 30 * time.Second
		log.Printf("loadgen: in-process renderd at %s", target)
	}

	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		return b
	}
	// The mix: a handful of distinct frames (so the cache works but is
	// not a single key), a rotating camera, and a few deadline-gated
	// requests that exercise degradation and rejection.
	backends := []core.Renderer{core.RayTrace, core.Volume}
	var shots []loadgen.Shot
	for i := 0; i < 48; i++ {
		req := serve.FrameRequest{
			Backend: backends[i%len(backends)],
			Sim:     "kripke",
			N:       10 + 2*(i%4),
			Width:   96 + 32*(i%3),
			Azimuth: float64(30 * (i % 4)),
		}
		if i%6 == 0 {
			req.DeadlineMillis = 50
		}
		if i%12 == 0 {
			req.DeadlineMillis = 0.001 // impossibly tight: a fast 422
		}
		shots = append(shots, loadgen.Shot{Path: "/v1/frame", Body: mustJSON(req)})
	}

	log.Printf("loadgen: %d clients for %s against %s", concurrency, duration, target)
	rep, err := loadgen.Run(loadgen.Options{
		Target: target, Client: client, Shots: shots,
		Duration: duration, Concurrency: concurrency,
		Accept: func(status int) bool {
			return status == http.StatusOK || status == http.StatusUnprocessableEntity
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nloadgen results\n%s", rep)
	if rep.Failed > 0 {
		return fmt.Errorf("loadgen: %d requests failed", rep.Failed)
	}
	return nil
}
