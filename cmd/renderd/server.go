package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/cluster"
	"insitu/internal/core"
	"insitu/internal/obs"
	"insitu/internal/registry"
	"insitu/internal/serve"
)

// maxBodyBytes bounds request bodies; a frame request is a few hundred
// bytes.
const maxBodyBytes = 1 << 20

// webServer wires the render-serving subsystem to HTTP. fleet is the
// optional worker cluster behind srv (nil without -cluster); readiness
// reports its quorum.
type webServer struct {
	srv   *serve.Server
	fleet *cluster.Cluster
	start time.Time
}

func newWebServer(srv *serve.Server, fleet *cluster.Cluster) *webServer {
	return &webServer{srv: srv, fleet: fleet, start: time.Now()}
}

// handler builds the route table.
func (s *webServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/frame", s.handleFrameGet)
	mux.HandleFunc("POST /v1/frame", s.handleFramePost)
	mux.HandleFunc("POST /v1/session", s.handleSessionOpen)
	mux.HandleFunc("GET /v1/session/{id}", s.handleSessionInfo)
	mux.HandleFunc("GET /v1/session/{id}/frame", s.handleSessionFrame)
	mux.HandleFunc("GET /v1/session/{id}/stream", s.handleSessionStream)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionClose)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleProm)
	return mux
}

// writeJSON is the shared buffered-encode helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	serve.WriteJSON(w, status, v)
}

type errorBody struct {
	Error string `json:"error"`
	// Rejection carries the model's predicted-time verdict when the
	// error is a deadline rejection.
	Rejection *serve.RejectionError `json:"rejection,omitempty"`
}

// frameErrStatus maps serving errors to HTTP statuses: client mistakes
// are 400, unknown models 404, deadline rejections 422 (the request is
// well-formed, the physics disagree), backpressure 503.
func frameErrStatus(err error) int {
	var rej *serve.RejectionError
	switch {
	case errors.As(err, &rej):
		return http.StatusUnprocessableEntity
	case errors.Is(err, serve.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrNoModel):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// serveFrame runs one request through the serving path and writes the
// PNG (or the structured refusal).
func (s *webServer) serveFrame(w http.ResponseWriter, req serve.FrameRequest) {
	res, err := s.srv.Render(req)
	if err != nil {
		body := errorBody{Error: err.Error()}
		var rej *serve.RejectionError
		if errors.As(err, &rej) {
			body.Rejection = rej
		}
		writeJSON(w, frameErrStatus(err), body)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "image/png")
	h.Set("X-Renderd-Cache", hitMiss(res.CacheHit))
	h.Set("X-Renderd-Degraded", strconv.FormatBool(res.Degraded))
	h.Set("X-Renderd-Quality", fmt.Sprintf("%dx%d n=%d wl=%d", res.Width, res.Height, res.N, res.RTWorkload))
	h.Set("X-Renderd-Predicted-Seconds", strconv.FormatFloat(res.PredictedSeconds, 'g', 6, 64))
	h.Set("X-Renderd-Render-Seconds", strconv.FormatFloat(res.RenderSeconds, 'g', 6, 64))
	h.Set("X-Renderd-Shards", strconv.Itoa(res.Shards))
	h.Set("X-Renderd-Retries", strconv.Itoa(res.Retries))
	h.Set("X-Renderd-Fleet-Degraded", strconv.FormatBool(res.FleetDegraded))
	h.Set("X-Renderd-Queue-Seconds", strconv.FormatFloat(res.QueueSeconds, 'g', 6, 64))
	if res.DeadlineMiss {
		h.Set("X-Renderd-Deadline-Miss", "1")
	}
	if res.Shards > 1 {
		h.Set("X-Renderd-Composite-Seconds", strconv.FormatFloat(res.CompositeSeconds, 'g', 6, 64))
		h.Set("X-Renderd-Predicted-Composite-Seconds", strconv.FormatFloat(res.PredictedCompositeSeconds, 'g', 6, 64))
		ranks := make([]string, len(res.RankRenderSeconds))
		for i, sec := range res.RankRenderSeconds {
			ranks[i] = strconv.FormatFloat(sec, 'g', 6, 64)
		}
		h.Set("X-Renderd-Rank-Render-Seconds", strings.Join(ranks, ","))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.PNG)
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// handleFramePost renders from a JSON body.
func (s *webServer) handleFramePost(w http.ResponseWriter, r *http.Request) {
	var req serve.FrameRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	s.serveFrame(w, req)
}

// handleFrameGet renders from query parameters — the curl-friendly
// form: /v1/frame?backend=raytracer&sim=kripke&n=24&size=256&deadline_ms=50
func (s *webServer) handleFrameGet(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	req := serve.FrameRequest{
		Backend: core.Renderer(q.Get("backend")),
		Sim:     q.Get("sim"),
		Arch:    q.Get("arch"),
	}
	intArg := func(name string, dst *int) bool {
		v := q.Get(name)
		if v == "" {
			return true
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad %s: %v", name, err)})
			return false
		}
		*dst = n
		return true
	}
	floatArg := func(name string, dst *float64) bool {
		v := q.Get(name)
		if v == "" {
			return true
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad %s: %v", name, err)})
			return false
		}
		*dst = f
		return true
	}
	var size int
	if !intArg("n", &req.N) || !intArg("size", &size) ||
		!intArg("width", &req.Width) || !intArg("height", &req.Height) ||
		!intArg("shards", &req.Shards) ||
		!floatArg("azimuth", &req.Azimuth) || !floatArg("zoom", &req.Zoom) ||
		!floatArg("deadline_ms", &req.DeadlineMillis) {
		return
	}
	if size > 0 && req.Width == 0 {
		req.Width = size
	}
	s.serveFrame(w, req)
}

// healthzBody is the liveness document.
type healthzBody struct {
	Status        string `json:"status"`
	Models        int    `json:"models"`
	Generation    uint64 `json:"generation"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// handleHealthz is pure liveness: the process is up and answering. It
// always returns 200 — a renderd with an empty registry or a degraded
// fleet is alive, just not ready; orchestrators that restart on failed
// liveness must not confuse the two (that restart loop would be worse
// than the degradation). Readiness gating belongs to /readyz.
func (s *webServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := healthzBody{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if v, err := s.srv.Engine().Registry().View(); err == nil {
		body.Generation = v.Generation()
		body.Models = len(v.Snapshot().Models)
	}
	writeJSON(w, http.StatusOK, body)
}

// readyzBody is the readiness document: can this process serve frames
// well right now?
type readyzBody struct {
	Status     string `json:"status"`
	Models     int    `json:"models"`
	Generation uint64 `json:"generation"`
	// Fleet health, present when this renderd fronts a worker cluster.
	// Ready requires a majority of ranks alive: below quorum the fleet
	// serves only heavily clamped or fallback frames, so a load balancer
	// should prefer a healthier replica.
	FleetWorkers int   `json:"fleet_workers,omitempty"`
	FleetAlive   int   `json:"fleet_alive,omitempty"`
	FleetDead    []int `json:"fleet_dead,omitempty"`
}

func (s *webServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := readyzBody{Status: "ok"}
	v, err := s.srv.Engine().Registry().View()
	if err != nil {
		body.Status = "no models loaded"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body.Generation = v.Generation()
	body.Models = len(v.Snapshot().Models)
	if s.fleet != nil {
		body.FleetWorkers = s.fleet.Workers()
		body.FleetAlive = s.fleet.AliveWorkers()
		body.FleetDead = s.fleet.DeadRanks()
		if 2*body.FleetAlive <= body.FleetWorkers {
			body.Status = "fleet below quorum"
			writeJSON(w, http.StatusServiceUnavailable, body)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// modelsBody mirrors advisord's /v1/models so clients can watch the
// calibration generation on either service.
type modelsBody struct {
	Generation  uint64              `json:"generation"`
	Source      string              `json:"source"`
	CreatedUnix int64               `json:"created_unix"`
	Mapping     registry.MappingDoc `json:"mapping"`
	Archs       []string            `json:"archs"`
	Models      []registry.ModelDoc `json:"models"`
	Compositing *registry.ModelDoc  `json:"compositing,omitempty"`
}

func (s *webServer) handleModels(w http.ResponseWriter, r *http.Request) {
	v, err := s.srv.Engine().Registry().View()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no registry loaded"})
		return
	}
	snap := v.Snapshot()
	archs := make([]string, 0, 2)
	seen := map[string]bool{}
	for _, d := range snap.Models {
		if !seen[d.Arch] {
			seen[d.Arch] = true
			archs = append(archs, d.Arch)
		}
	}
	sort.Strings(archs)
	writeJSON(w, http.StatusOK, modelsBody{
		Generation:  v.Generation(),
		Source:      snap.Source,
		CreatedUnix: snap.CreatedUnix,
		Mapping:     snap.Mapping,
		Archs:       archs,
		Models:      snap.Models,
		Compositing: snap.Compositing,
	})
}

// metricsBody merges the serving-path counters with the advisor
// engine's per-operation latencies and the registry's prediction-cache
// stats.
type metricsBody struct {
	UptimeSeconds int64             `json:"uptime_seconds"`
	Generation    uint64            `json:"generation"`
	Serve         serve.Stats       `json:"serve"`
	Ops           []advisor.OpStats `json:"ops"`
	PredictCache  cacheBody         `json:"predict_cache"`
}

type cacheBody struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
}

func (s *webServer) metricsSnapshot() metricsBody {
	eng := s.srv.Engine()
	hits, misses, size := eng.Registry().CacheStats()
	return metricsBody{
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Generation:    eng.Registry().Generation(),
		Serve:         s.srv.Stats(),
		Ops:           eng.Metrics(),
		PredictCache:  cacheBody{Hits: hits, Misses: misses, Size: size},
	}
}

func (s *webServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handleProm renders the same metrics snapshot /v1/metrics serves, in
// Prometheus text exposition format, so a scraper needs no sidecar.
func (s *webServer) handleProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteProm(w, "renderd", s.metricsSnapshot()); err != nil {
		// Headers are out; all we can do is log through the access log.
		_ = err
	}
}

// traceBody is the /v1/trace document: the most recent committed frame
// lifecycle traces, oldest first.
type traceBody struct {
	Count  int             `json:"count"`
	Traces []obs.TraceJSON `json:"traces"`
}

// handleTrace serves recent frame lifecycle traces. Query: last=N
// (default 64, bounded by the tracer's ring capacity) selects how many;
// format=chrome streams a chrome://tracing-loadable trace_event array
// instead of the native timeline JSON.
func (s *webServer) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	last := 64
	if v := q.Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad last: %q", v)})
			return
		}
		last = n
	}
	traces := s.srv.Traces(last)
	if q.Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="renderd-trace.json"`)
		_ = obs.WriteChromeTrace(w, traces)
		return
	}
	body := traceBody{Count: len(traces), Traces: make([]obs.TraceJSON, len(traces))}
	for i := range traces {
		body.Traces[i] = traces[i].JSON()
	}
	writeJSON(w, http.StatusOK, body)
}

// logRequests is minimal access logging middleware.
func logRequests(logf func(format string, args ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
