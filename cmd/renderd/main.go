// Command renderd is the model-gated render farm: it serves PNG frames
// of the proxy simulations over HTTP, using the fitted performance
// models as admission control. Every request is costed by the advisor
// engine before rendering — infeasible deadlines are rejected with the
// prediction, tight ones are met by degrading quality (resolution,
// geometry, ray tracing workload) until the prediction fits — then
// scheduled earliest-deadline-first on a bounded pool of persistent
// renderers and served through an LRU frame cache. Each rendered
// frame's measured wall time feeds back into continuous calibration,
// so serving traffic refits the models that gate it.
//
// With -cluster N the process additionally hosts an in-process worker
// fleet of N ranks: requests carrying shards=k are partitioned across k
// ranks (weak scaling, one N^3 block each), rendered in parallel, and
// composited sort-last into one frame, with the fitted compositing model
// (the paper's Tc) charged at admission and refitted from the measured
// compositing times.
//
// Interactive clients open persistent sessions: the session is admitted
// once, pins its warm runner, tracks the camera path, and speculatively
// renders model-predicted next poses into the frame cache during the
// client's think time — strictly below foreground deadline work — so a
// predictable camera (an orbit) sees cache-hit time-to-photon.
//
//	GET    /healthz              liveness (always 200 while the process serves)
//	GET    /readyz               readiness: models loaded + fleet quorum
//	GET    /v1/frame             render (query: backend, sim, n, size, deadline_ms,
//	                             azimuth, zoom, arch, shards) -> image/png
//	POST   /v1/frame             same as JSON body
//	POST   /v1/session           open a streaming session (body = frame JSON) -> id
//	GET    /v1/session/{id}      session info + prefetch counters
//	GET    /v1/session/{id}/frame   next pose (query: azimuth, zoom) -> image/png
//	GET    /v1/session/{id}/stream  server-paced orbit (query: step, fps, frames)
//	                             -> multipart/x-mixed-replace PNG parts
//	DELETE /v1/session/{id}      close the session, release its runner pin
//	GET    /v1/models            served models + calibration generation
//	GET    /v1/metrics           admission/cache/scheduler/session/prefetch/
//	                             calibration/cluster counters, per-stage frame
//	                             latency histograms, model-drift distributions
//	GET    /v1/trace             recent frame lifecycle traces (query: last=N,
//	                             format=chrome for a chrome://tracing dump)
//	GET    /metrics              the same metrics snapshot as Prometheus text
//	                             exposition (scrape-ready, no sidecar)
//
// With -debug-addr a second listener serves net/http/pprof.
//
// Usage:
//
//	renderd -registry repro_out/models.json [-addr :8090]
//	renderd -registry models.json -cluster 4     # sharded serving
//	renderd -bootstrap [-registry models.json]   # measure-fit-serve
//	renderd -loadgen [-target URL] [-duration 10s] [-concurrency 8]
//	renderd -loadgen -sessions 8 [-think 50ms]   # interactive sessions:
//	                                             # time-to-photon + prefetch hit rate
//	renderd -loadgen -chaos [-cluster 4]         # fault-injected fleet:
//	                                             # recovery breakdown by cause
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/cluster"
	"insitu/internal/registry"
	"insitu/internal/serve"
	"insitu/internal/study"
)

// pprofHandler builds an explicit pprof mux — the serving mux never
// exposes the profiler; it lives only on the separate -debug-addr
// listener, which deployments keep off the public network.
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		debugAddr  = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof (empty = disabled)")
		regPath    = flag.String("registry", "", "registry snapshot JSON (from 'repro export')")
		cacheSize  = flag.Int("cache", 4096, "prediction LRU cache entries (0 disables)")
		bootstrap  = flag.Bool("bootstrap", false, "if the registry file is missing, run a short study and fit one")
		calibrate  = flag.Bool("calibrate", true, "feed served frames back into continuous model refits")
		refitEvery = flag.Int("refit-every", 8, "observed frames between refits")
		arch       = flag.String("arch", "cpu", "default device profile / model architecture to render on")
		workers    = flag.Int("workers", 2, "concurrent render workers")
		queue      = flag.Int("queue", 64, "render queue capacity (EDF-ordered)")
		frames     = flag.Int("frame-cache", 256, "encoded-frame LRU entries")
		runners    = flag.Int("runners", 8, "idle prepared renderers kept warm")
		clusterN   = flag.Int("cluster", 0, "worker ranks for sharded frames (0 = single-process serving only)")

		loadgenMode = flag.Bool("loadgen", false, "run the load generator instead of serving")
		target      = flag.String("target", "", "loadgen: base URL of a running renderd (default: in-process server)")
		duration    = flag.Duration("duration", 10*time.Second, "loadgen: how long to sustain load")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent clients")
		sessions    = flag.Int("sessions", 0, "loadgen: interactive orbiting sessions instead of the request mix (reports time-to-photon + prefetch hit rate)")
		think       = flag.Duration("think", 50*time.Millisecond, "loadgen: per-session pause between frames (the idle headroom prefetch renders into)")
		chaos       = flag.Bool("chaos", false, "loadgen: inject deterministic fleet faults (packet loss, a rank kill) into an in-process -cluster fleet and report the recovery breakdown")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "loadgen: fault plan seed for -chaos")
	)
	flag.Parse()

	if *loadgenMode {
		err := runLoadgen(loadgenConfig{
			target: *target, regPath: *regPath, bootstrap: *bootstrap,
			cacheSize: *cacheSize, arch: *arch,
			duration: *duration, concurrency: *concurrency,
			sessions: *sessions, think: *think,
			chaos: *chaos, chaosSeed: *chaosSeed, clusterN: *clusterN,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	srv, fleet, err := buildServer(*regPath, *bootstrap, *cacheSize, *calibrate, *refitEvery, *clusterN, nil, serve.Config{
		Arch: *arch, Workers: *workers, QueueCap: *queue,
		FrameCacheEntries: *frames, RunnerCacheEntries: *runners,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Deferred in reverse: the server drains in-flight frames before the
	// fleet it dispatches them to goes away.
	if fleet != nil {
		defer fleet.Close()
	}
	defer srv.Close()

	if *debugAddr != "" {
		go func() {
			log.Printf("pprof debug server on %s", *debugAddr)
			log.Printf("pprof debug server exited: %v", http.ListenAndServe(*debugAddr, pprofHandler()))
		}()
	}

	web := newWebServer(srv, fleet)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(log.Printf, web.handler()),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful drain: when Shutdown starts, close every streaming session
	// first — active /v1/session/{id}/stream handlers see ErrSessionClosed
	// on their next frame and end their multipart streams, speculative
	// prefetch jobs become no-ops, and runner pins release — so Shutdown's
	// wait for in-flight requests actually terminates.
	httpSrv.RegisterOnShutdown(srv.DrainSessions)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("renderd listening on %s (arch %s, %d workers)", *addr, *arch, *workers)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Printf("shutting down...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
	log.Printf("bye")
}

// buildServer assembles the full serving stack: registry, advisor
// engine, calibrator (when enabled), optional worker fleet for sharded
// frames, and the render-serving subsystem. The returned cluster (nil
// when clusterN is 0) must be closed after the server. copts overrides
// the fleet's fault-tolerance tuning (nil = defaults) — the chaos
// loadgen uses it to install a fault plan.
func buildServer(regPath string, bootstrap bool, cacheSize int, calibrate bool, refitEvery, clusterN int, copts *cluster.Options, cfg serve.Config) (*serve.Server, *cluster.Cluster, error) {
	reg, err := serve.OpenRegistry(regPath, bootstrap, cacheSize, log.Printf)
	if err != nil {
		return nil, nil, err
	}
	snap := reg.Snapshot()
	log.Printf("registry: %d models (source %q, archs %v)", len(snap.Models), snap.Source, reg.Archs())

	engine := advisor.New(reg)
	if calibrate {
		engine.SetObserver(newCalibrator(reg, regPath, refitEvery))
		log.Printf("continuous calibration enabled (served frames refit the models)")
	} else {
		cfg.ObserveQueue = -1
	}
	var fleet *cluster.Cluster
	if clusterN > 0 {
		if copts != nil {
			fleet, err = cluster.NewWithOptions(reg, clusterN, *copts)
		} else {
			fleet, err = cluster.New(reg, clusterN)
		}
		if err != nil {
			return nil, nil, err
		}
		cfg.Cluster = fleet
		log.Printf("cluster mode: %d worker ranks (requests may shard up to %d ways)", clusterN, clusterN)
	}
	return serve.New(engine, cfg), fleet, nil
}

// newCalibrator builds the same continuous-calibration loop advisord
// runs, fed by renderd's own served frames instead of posted
// observations.
func newCalibrator(reg *registry.Registry, regPath string, refitEvery int) *study.Calibrator {
	return &study.Calibrator{
		Source:     "renderd-frames",
		RefitEvery: refitEvery,
		MaxCorpus:  4096,
		Base: func() (*registry.Snapshot, uint64) {
			v, err := reg.View()
			if err != nil {
				return nil, reg.Generation()
			}
			return v.Snapshot(), v.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			if err := reg.PublishIf(s, baseGen); err != nil {
				return err
			}
			if regPath != "" {
				if err := s.WriteFile(regPath); err != nil {
					log.Printf("calibrate: persisting %s: %v", regPath, err)
				}
			}
			return nil
		},
	}
}
