# Tier-1 verify is `go build ./... && go test ./...`; `make ci` mirrors it.

GO ?= go

.PHONY: all build test race vet fmt bench ci clean

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent paths (parallel study runner, registry
# hot reload, advisord observation ingestion) under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-friendly gofmt check).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the table/figure benchmarks at the repo root plus the advisor
# throughput benchmark.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkAdvisorPredict ./internal/advisor/

ci: build vet fmt test race

clean:
	$(GO) clean ./...
	rm -rf repro_out
