# Tier-1 verify is `go build ./... && go test ./...`; `make ci` mirrors it.

GO ?= go

.PHONY: all build test race vet fmt bench cover ci clean

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent paths (parallel study runner, registry
# hot reload, advisord observation ingestion) under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-friendly gofmt check).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the table/figure benchmarks at the repo root, the advisor
# throughput benchmark, the scenario dispatch benchmark, and the
# small-plan study benchmark (one tiny configuration per registered
# backend through the full measurement path).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkAdvisorPredict ./internal/advisor/
	$(GO) test -run '^$$' -bench BenchmarkScenarioDispatch -benchtime 1x ./internal/scenario/
	$(GO) test -run '^$$' -bench 'BenchmarkStudySmallPlan|BenchmarkPlanGeneration' -benchtime 1x ./internal/study/

# cover runs the test suite with coverage and prints a per-function
# summary plus the total. The profile lands in cover.out for
# `go tool cover -html=cover.out`.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1

ci: build vet fmt test race

clean:
	$(GO) clean ./...
	rm -rf repro_out
