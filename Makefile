# Tier-1 verify is `go build ./... && go test ./...`; `make ci` mirrors it.

GO ?= go

# bench-json output file; committed per PR (BENCH_4.json, BENCH_5.json,
# ...) so benchmark trajectories survive across sessions.
BENCH_JSON ?= BENCH_10.json

# Committed baselines guarding the zero-allocation steady state:
# bench-json fails if a benchmark that was 0 allocs/op in any of these
# is >0 now.
BENCH_BASELINES ?= BENCH_4.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json BENCH_9.json

# insitulint is the repo's analyzer suite (internal/analysis); built
# into ./bin so the vettool path is hermetic to the checkout.
LINT_BIN := bin/insitulint

.PHONY: all build test race vet fmt lint bench bench-json chaos obs cover ci clean

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrent paths (parallel study runner, registry
# hot reload, advisord observation ingestion, and the serve race test —
# concurrent frame requests sharing one cache + calibrator) under the
# race detector; ci depends on it.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint compiles the repo's performance & fleet-safety invariants
# (//insitu:noalloc, collective discipline, lease/arena lifetimes,
# ctx-aware transport) into the build via `go vet -vettool`. The same
# binary runs standalone: `./bin/insitulint ./...`.
lint:
	$(GO) build -o $(LINT_BIN) ./tools/insitulint
	$(GO) vet -vettool=$(CURDIR)/$(LINT_BIN) ./...

# fmt fails if any file needs reformatting (CI-friendly gofmt check).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the table/figure benchmarks at the repo root, the advisor
# throughput benchmark, the scenario dispatch benchmark, and the
# small-plan study benchmark (one tiny configuration per registered
# backend through the full measurement path).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) test -run '^$$' -bench BenchmarkAdvisorPredict ./internal/advisor/
	$(GO) test -run '^$$' -bench BenchmarkScenarioDispatch -benchtime 1x ./internal/scenario/
	$(GO) test -run '^$$' -bench 'BenchmarkStudySmallPlan|BenchmarkPlanGeneration' -benchtime 1x ./internal/study/
	$(GO) test -run '^$$' -bench BenchmarkRenderd -benchtime 1x ./internal/serve/
	$(GO) test -run '^$$' -bench BenchmarkClusterThroughput -benchtime 1x ./internal/cluster/
	$(GO) test -run '^$$' -bench 'BenchmarkHistogramObserve|BenchmarkTraceSpan|BenchmarkDriftObserve' -benchtime 1x ./internal/obs/

# bench-json records the render, dispatch, small-plan study, and
# renderd serving-path benchmarks (ns/op + allocs/op via -benchmem) as
# $(BENCH_JSON), a benchstat-compatible baseline (the raw lines are
# embedded: `jq -r '.raw[]' $(BENCH_JSON)` reproduces benchstat input).
# Render benchmarks warm their frame arenas before the timer, so
# allocs/op is the steady-state figure; the renderd cache-hit benchmark
# is the serving layer's 0 allocs/op acceptance gate. benchjson compares
# against $(BENCH_BASELINES) and fails the target if any benchmark that
# was 0 allocs/op there allocates now.
bench-json:
	@$(GO) test -run '^$$' -bench 'BenchmarkTable1RayTraceShaded|BenchmarkTable2RayTraceFull|BenchmarkTable5Backends' -benchtime 5x -benchmem . > $(BENCH_JSON).render.tmp
	@$(GO) test -run '^$$' -bench BenchmarkScenarioDispatch -benchtime 10x -benchmem ./internal/scenario/ > $(BENCH_JSON).dispatch.tmp
	@$(GO) test -run '^$$' -bench 'BenchmarkStudySmallPlan|BenchmarkPlanGeneration' -benchtime 3x -benchmem ./internal/study/ > $(BENCH_JSON).study.tmp
	@$(GO) test -run '^$$' -bench BenchmarkRenderd -benchtime 2s -benchmem ./internal/serve/ > $(BENCH_JSON).serve.tmp
	@$(GO) test -run '^$$' -bench BenchmarkClusterThroughput -benchtime 2s -benchmem ./internal/cluster/ > $(BENCH_JSON).cluster.tmp
	@$(GO) test -run '^$$' -bench 'BenchmarkHistogramObserve|BenchmarkTraceSpan|BenchmarkDriftObserve' -benchtime 2s -benchmem ./internal/obs/ > $(BENCH_JSON).obs.tmp
	@cat $(BENCH_JSON).render.tmp $(BENCH_JSON).dispatch.tmp $(BENCH_JSON).study.tmp $(BENCH_JSON).serve.tmp $(BENCH_JSON).cluster.tmp $(BENCH_JSON).obs.tmp | $(GO) run ./tools/benchjson $(foreach b,$(BENCH_BASELINES),-baseline $(b)) > $(BENCH_JSON)
	@rm -f $(BENCH_JSON).render.tmp $(BENCH_JSON).dispatch.tmp $(BENCH_JSON).study.tmp $(BENCH_JSON).serve.tmp $(BENCH_JSON).cluster.tmp $(BENCH_JSON).obs.tmp
	@echo "wrote $(BENCH_JSON)"

# chaos runs the fault-injection suite under the race detector: rank
# kills, stalled links, seeded packet loss, blame-driven eviction, and
# the serving layer's retry/clamp/breaker recovery on top — the
# recovery paths a green `make test` alone would leave cold.
chaos:
	$(GO) test -race -run 'TestChaos|TestServedFrameSurvivesRankKill|TestBreakerOpensShortCircuitsAndRecovers|TestReadyzFleetQuorum' ./internal/cluster/ ./internal/serve/ ./cmd/renderd/

# obs is the observability smoke: boot renderd and assert the scrape
# surfaces answer (/metrics Prometheus exposition validates, /v1/trace
# returns lifecycle timelines, /v1/metrics keeps its JSON shape), then
# run insitulint over the instrumented hot paths so a span or histogram
# added off the noalloc discipline fails here, not in a benchmark.
obs:
	$(GO) test -run 'TestPromExposition|TestTraceEndpoint|TestMetricsJSONShape|TestFrameResponseQueueHeaders' ./cmd/renderd/
	$(GO) test -run 'TestFrameTrace' ./internal/serve/
	$(GO) build -o $(LINT_BIN) ./tools/insitulint
	$(GO) vet -vettool=$(CURDIR)/$(LINT_BIN) ./internal/obs/ ./internal/serve/ ./internal/cluster/ ./internal/comm/ ./cmd/renderd/ ./cmd/advisord/

# cover runs the test suite with coverage and prints a per-function
# summary plus the total. The profile lands in cover.out for
# `go tool cover -html=cover.out`.
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1

ci: build vet lint fmt test race chaos obs

clean:
	$(GO) clean ./...
	rm -rf repro_out
